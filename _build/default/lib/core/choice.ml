type kind = Failure_point | Read_from | Drain

exception Divergence of string

type cell = { mutable chosen : int; num : int; kind : kind }

type t = {
  mutable cells : cell array;
  mutable len : int;
  mutable cursor : int;
  created : int array;  (* cumulative fresh decisions, indexed by kind *)
}

let kind_index = function Failure_point -> 0 | Read_from -> 1 | Drain -> 2

let create () = { cells = [||]; len = 0; cursor = 0; created = Array.make 3 0 }
let begin_replay t = t.cursor <- 0

let grow t =
  let cap = Array.length t.cells in
  let cap' = if cap = 0 then 16 else 2 * cap in
  let cells = Array.make cap' { chosen = 0; num = 1; kind = Read_from } in
  Array.blit t.cells 0 cells 0 t.len;
  t.cells <- cells

let choose t kind n =
  if n <= 0 then invalid_arg "Choice.choose: no alternatives";
  if t.cursor < t.len then begin
    let cell = t.cells.(t.cursor) in
    if cell.num <> n || cell.kind <> kind then
      raise
        (Divergence
           (Printf.sprintf
           "Choice.choose: replay divergence at decision %d (recorded %d alternatives, now %d) — \
            the program under test is nondeterministic"
              t.cursor cell.num n));
    t.cursor <- t.cursor + 1;
    cell.chosen
  end
  else begin
    if t.len = Array.length t.cells then grow t;
    t.created.(kind_index kind) <- t.created.(kind_index kind) + 1;
    t.cells.(t.len) <- { chosen = 0; num = n; kind };
    t.len <- t.len + 1;
    t.cursor <- t.cursor + 1;
    0
  end

let advance t =
  t.len <- t.cursor;
  let rec strip () =
    if t.len = 0 then false
    else
      let cell = t.cells.(t.len - 1) in
      if cell.chosen + 1 >= cell.num then begin
        t.len <- t.len - 1;
        strip ()
      end
      else begin
        cell.chosen <- cell.chosen + 1;
        true
      end
  in
  strip ()

let depth t = t.cursor
let created t kind = t.created.(kind_index kind)

let count_kind t kind =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if t.cells.(i).kind = kind then incr n
  done;
  !n
