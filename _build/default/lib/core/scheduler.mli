(** Cooperative fibers for multi-threaded PM programs.

    Jaaru controls the concurrent schedule and does not exhaustively explore
    interleavings (paper §4, Discussion): threads run under a deterministic
    round-robin scheduler that switches at every memory operation. Fibers are
    OCaml 5 effect handlers, so a power failure raised inside any fiber
    unwinds the whole parallel section, mirroring how a real failure kills
    every thread at once. *)

type fiber = {
  enter : unit -> unit;
      (** Invoked every time the fiber is (re)scheduled — used by {!Ctx} to
          swap in the fiber's TSO thread state. *)
  body : unit -> unit;
}

val run_fibers : ?pick:(int -> int) -> fiber list -> unit
(** Runs the fibers until all complete. [pick], given the number of runnable
    fibers, chooses which runs next (default [fun _ -> 0]: round-robin); a
    deterministic PRNG here implements schedule fuzzing for concurrency bugs
    (the future-work direction the paper names in its Discussion). An
    exception raised by any fiber propagates immediately; remaining fibers
    are abandoned. *)

val yield : unit -> unit
(** Reschedules the calling fiber to the back of the run queue. A no-op when
    called outside {!run_fibers}. *)
