type bugs = { missing_meta_flush : bool; missing_bump_flush : bool }

let no_bugs = { missing_meta_flush = false; missing_bump_flush = false }

let magic_value = 0x52414c4c4f43 (* "RALLOC" *)
let off_magic = 0
let off_bump = 64 (* its own line: flushing the magic must not persist the bump *)

type t = { ctx : Jaaru.Ctx.t; base : Pmem.Addr.t; limit : Pmem.Addr.t; bugs : bugs }

let store64 t label addr v = Jaaru.Ctx.store64 t.ctx ~label addr v
let load64 t label addr = Jaaru.Ctx.load64 t.ctx ~label addr
let flush t label addr size = Jaaru.Ctx.clflush t.ctx ~label addr size
let fence t label = Jaaru.Ctx.sfence t.ctx ~label ()

let create_or_open ?(bugs = no_bugs) ctx ~base ~limit =
  let t = { ctx; base; limit; bugs } in
  let magic = load64 t "region_alloc.ml:read magic" (base + off_magic) in
  if magic <> magic_value then begin
    store64 t "region_alloc.ml:init bump" (base + off_bump) (base + 128);
    if not bugs.missing_meta_flush then begin
      flush t "region_alloc.ml:flush bump" (base + off_bump) 8;
      fence t "region_alloc.ml:fence bump"
    end;
    store64 t "region_alloc.ml:init magic" (base + off_magic) magic_value;
    flush t "region_alloc.ml:flush magic" (base + off_magic) 8;
    fence t "region_alloc.ml:fence magic"
  end;
  t

let align_up n a = (n + a - 1) / a * a

let alloc t ?(label = "region_alloc.ml:alloc") size =
  let size = align_up (max size 8) 16 in
  let p = load64 t "region_alloc.ml:read bump" (t.base + off_bump) in
  Jaaru.Ctx.check t.ctx ~label:"region_alloc.ml:sanity"
    (p >= t.base + 128 && p <= t.limit)
    "allocator bump pointer corrupt";
  Jaaru.Ctx.check t.ctx ~label:"region_alloc.ml:oom" (p + size <= t.limit)
    "persistent region exhausted";
  store64 t label (t.base + off_bump) (p + size);
  if not t.bugs.missing_bump_flush then begin
    flush t "region_alloc.ml:flush alloc" (t.base + off_bump) 8;
    fence t "region_alloc.ml:fence alloc"
  end;
  (* Model recycled, DRAM-dirty memory: scribble an out-of-region poison
     pattern with plain (unflushed) stores. A constructor that flushes its
     initialisation hides the poison from every post-crash reader; one that
     forgets the flush lets recovery observe it — exactly how RECIPE's
     missing-constructor-flush bugs manifest on recycled allocations. *)
  for word = 0 to (size / 8) - 1 do
    store64 t "region_alloc.ml:poison" (p + (8 * word)) 0x6b6b6b6b6b6b
  done;
  p

let end_of_heap t = load64 t "region_alloc.ml:read bump" (t.base + off_bump)

let contains_object t p = p >= t.base + 128 && p < end_of_heap t
