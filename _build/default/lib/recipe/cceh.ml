type bugs = {
  ctor_skip_dir_flush : bool;
  ctor_skip_segment_flush : bool;
  ctor_skip_meta_flush : bool;
}

let no_bugs =
  { ctor_skip_dir_flush = false; ctor_skip_segment_flush = false; ctor_skip_meta_flush = false }

let magic_value = 0xcce4
let max_global_depth = 8
let slots_per_segment = 16
let probe_run = 4 (* the cache-line-sized linear-probe window *)

(* Metadata at the region base; allocator root on the next line. *)
let off_magic = 0
let off_global_depth = 64 (* metadata line, separate from the magic commit *)
let off_dir = 72

(* Segment: one header line, then 16-byte slots. *)
let seg_off_depth = 0
let seg_header = 64
let seg_size = seg_header + (16 * slots_per_segment)

type t = { ctx : Jaaru.Ctx.t; base : Pmem.Addr.t; alloc : Region_alloc.t; bugs : bugs }

let store64 t label addr v = Jaaru.Ctx.store64 t.ctx ~label addr v
let load64 t label addr = Jaaru.Ctx.load64 t.ctx ~label addr
let flush t label addr size = Jaaru.Ctx.clflush t.ctx ~label addr size
let fence t label = Jaaru.Ctx.sfence t.ctx ~label ()

let hash k =
  let h = k * 0x9e3779b97f4a7c1 land max_int in
  h lxor (h lsr 29)

let global_depth t = load64 t "cceh.ml:read depth" (t.base + off_global_depth)
let dir_ptr t = load64 t "cceh.ml:read dir" (t.base + off_dir)
let dir_slot dir i = dir + (8 * i)
let read_dir_entry t dir i = load64 t "cceh.ml:read dir entry" (dir_slot dir i)
let seg_depth t seg = load64 t "cceh.ml:read local depth" (seg + seg_off_depth)
let slot_addr seg i = seg + seg_header + (16 * i)
let slot_key t seg i = load64 t "cceh.ml:read key" (slot_addr seg i)
let slot_value t seg i = load64 t "cceh.ml:read value" (slot_addr seg i + 8)

(* [flush_now = false] lets a caller that will immediately overwrite parts
   of the segment issue one combined flush instead (avoiding redundant
   flush instructions — see the checker's perf reports). *)
let new_segment ?(flush_now = true) t ~depth =
  let seg = Region_alloc.alloc t.alloc ~label:"cceh.ml:alloc segment" seg_size in
  store64 t "cceh.ml:seg init depth" (seg + seg_off_depth) depth;
  for i = 0 to slots_per_segment - 1 do
    store64 t "cceh.ml:seg init key" (slot_addr seg i) 0;
    store64 t "cceh.ml:seg init value" (slot_addr seg i + 8) 0
  done;
  if flush_now && not t.bugs.ctor_skip_segment_flush then begin
    flush t "cceh.ml:flush segment" seg seg_size;
    fence t "cceh.ml:fence segment"
  end;
  seg

let constructor t =
  let dir = Region_alloc.alloc t.alloc ~label:"cceh.ml:alloc dir" 16 in
  let seg0 = new_segment t ~depth:1 in
  let seg1 = new_segment t ~depth:1 in
  store64 t "cceh.ml:ctor dir0" dir seg0;
  store64 t "cceh.ml:ctor dir1" (dir + 8) seg1;
  if not t.bugs.ctor_skip_dir_flush then begin
    flush t "cceh.ml:flush dir" dir 16;
    fence t "cceh.ml:fence dir"
  end;
  store64 t "cceh.ml:ctor depth" (t.base + off_global_depth) 1;
  store64 t "cceh.ml:ctor dirptr" (t.base + off_dir) dir;
  if not t.bugs.ctor_skip_meta_flush then begin
    flush t "cceh.ml:flush meta" (t.base + off_global_depth) 16;
    fence t "cceh.ml:fence meta"
  end;
  store64 t "cceh.ml:ctor magic" (t.base + off_magic) magic_value;
  flush t "cceh.ml:flush magic" (t.base + off_magic) 8;
  fence t "cceh.ml:fence magic"

let create_or_open ?(bugs = no_bugs) ?alloc_bugs ctx =
  let region = Jaaru.Ctx.region ctx in
  let base = region.Pmem.Region.base in
  let alloc =
    Region_alloc.create_or_open ?bugs:alloc_bugs ctx ~base:(base + 128)
      ~limit:(Pmem.Region.limit region)
  in
  let t = { ctx; base; alloc; bugs } in
  if load64 t "cceh.ml:read magic" (base + off_magic) <> magic_value then constructor t;
  t

let segment_for t k =
  let g = global_depth t in
  Jaaru.Ctx.check t.ctx ~label:"cceh.ml:depth sanity" (g >= 1 && g <= max_global_depth)
    "global depth corrupt";
  let dir = dir_ptr t in
  let idx = hash k land ((1 lsl g) - 1) in
  (read_dir_entry t dir idx, g, dir, idx)

let probe_base k = hash k lsr 32 land (slots_per_segment - 1)

(* Probe the short run; returns the matching or first empty slot. *)
let find_slot t seg k =
  let base = probe_base k in
  let rec go i empty =
    if i >= probe_run then `Full_or empty
    else
      let s = (base + i) mod slots_per_segment in
      let sk = slot_key t seg s in
      if sk = k then `Match s
      else if sk = 0 && empty = None then go (i + 1) (Some s)
      else go (i + 1) empty
  in
  go 0 None

let lookup t k =
  let seg, _, _, _ = segment_for t k in
  match find_slot t seg k with
  | `Match s -> Some (slot_value t seg s)
  | `Full_or _ -> None

let remove t k =
  let seg, _, _, _ = segment_for t k in
  match find_slot t seg k with
  | `Match s ->
      store64 t "cceh.ml:remove" (slot_addr seg s) 0;
      flush t "cceh.ml:flush remove" (slot_addr seg s) 8;
      fence t "cceh.ml:fence remove"
  | `Full_or _ -> ()

(* Split [seg] (local depth L): keys whose bit L is set move to a fresh
   sibling; the directory then redirects those slots. *)
let split t seg ~g ~dir =
  let l = seg_depth t seg in
  Jaaru.Ctx.check t.ctx ~label:"cceh.ml:split sanity" (l >= 1 && l <= g) "local depth corrupt";
  let g, dir =
    if l = g then begin
      (* Directory doubling: build and persist the doubled directory, swap
         the pointer, then advance the global depth. *)
      Jaaru.Ctx.check t.ctx ~label:"cceh.ml:depth limit" (g < max_global_depth)
        "directory beyond the depth limit";
      let size = 1 lsl g in
      let ndir = Region_alloc.alloc t.alloc ~label:"cceh.ml:alloc dir2" (16 * size) in
      for i = 0 to size - 1 do
        store64 t "cceh.ml:double copy" (ndir + (8 * i)) (read_dir_entry t dir i);
        store64 t "cceh.ml:double copy" (ndir + (8 * (i + size))) (read_dir_entry t dir i)
      done;
      flush t "cceh.ml:flush dir2" ndir (16 * size);
      fence t "cceh.ml:fence dir2";
      store64 t "cceh.ml:swap dir" (t.base + off_dir) ndir;
      flush t "cceh.ml:flush swap" (t.base + off_dir) 8;
      fence t "cceh.ml:fence swap";
      store64 t "cceh.ml:bump depth" (t.base + off_global_depth) (g + 1);
      flush t "cceh.ml:flush depth" (t.base + off_global_depth) 8;
      fence t "cceh.ml:fence depth";
      (g + 1, ndir)
    end
    else (g, dir)
  in
  (* Initialise and fill the sibling, then persist it with one flush. *)
  let sibling = new_segment ~flush_now:false t ~depth:(l + 1) in
  for i = 0 to slots_per_segment - 1 do
    let k = slot_key t seg i in
    if k <> 0 && hash k land (1 lsl l) <> 0 then begin
      store64 t "cceh.ml:split copy key" (slot_addr sibling i) k;
      store64 t "cceh.ml:split copy value" (slot_addr sibling i + 8) (slot_value t seg i)
    end
  done;
  flush t "cceh.ml:flush sibling" sibling seg_size;
  fence t "cceh.ml:fence sibling";
  (* Redirect the directory slots whose bit L is set and that map here. *)
  for i = 0 to (1 lsl g) - 1 do
    if read_dir_entry t dir i = seg && i land (1 lsl l) <> 0 then begin
      store64 t "cceh.ml:redirect" (dir_slot dir i) sibling;
      flush t "cceh.ml:flush redirect" (dir_slot dir i) 8
    end
  done;
  fence t "cceh.ml:fence redirect";
  (* Bump the survivor's depth, then lazily clear the moved slots. *)
  store64 t "cceh.ml:bump local" (seg + seg_off_depth) (l + 1);
  flush t "cceh.ml:flush local" (seg + seg_off_depth) 8;
  fence t "cceh.ml:fence local";
  let cleared_lines = Hashtbl.create 4 in
  for i = 0 to slots_per_segment - 1 do
    let k = slot_key t seg i in
    if k <> 0 && hash k land (1 lsl l) <> 0 then begin
      store64 t "cceh.ml:clear moved" (slot_addr seg i) 0;
      Hashtbl.replace cleared_lines (Pmem.Addr.line_of (slot_addr seg i)) ()
    end
  done;
  (* Flush only the lines the clearing touched. *)
  let lines = List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) cleared_lines []) in
  List.iter
    (fun line -> flush t "cceh.ml:flush cleared" (line * Pmem.Addr.cache_line_size) 8)
    lines;
  if lines <> [] then fence t "cceh.ml:fence cleared"

let insert t k v =
  Jaaru.Ctx.check t.ctx ~label:"cceh.ml:insert" (k <> 0) "keys must be non-zero";
  let rec attempt tries =
    Jaaru.Ctx.progress t.ctx ~label:"cceh.ml:insert retry" ();
    Jaaru.Ctx.check t.ctx ~label:"cceh.ml:insert progress" (tries < 3 * max_global_depth)
      "insert cannot make progress";
    let seg, g, dir, _ = segment_for t k in
    match find_slot t seg k with
    | `Match s ->
        store64 t "cceh.ml:update value" (slot_addr seg s + 8) v;
        flush t "cceh.ml:flush update" (slot_addr seg s + 8) 8;
        fence t "cceh.ml:fence update"
    | `Full_or (Some s) ->
        (* Value first, key commit second — the CCEH slot protocol. *)
        store64 t "cceh.ml:write value" (slot_addr seg s + 8) v;
        flush t "cceh.ml:flush value" (slot_addr seg s + 8) 8;
        fence t "cceh.ml:fence value";
        store64 t "cceh.ml:commit key" (slot_addr seg s) k;
        flush t "cceh.ml:flush key" (slot_addr seg s) 8;
        fence t "cceh.ml:fence key"
    | `Full_or None ->
        split t seg ~g ~dir;
        attempt (tries + 1)
  in
  attempt 0

let check t =
  Jaaru.Ctx.check t.ctx ~label:"cceh.ml:check magic"
    (load64 t "cceh.ml:read magic" (t.base + off_magic) = magic_value)
    "magic word corrupt";
  let g = global_depth t in
  Jaaru.Ctx.check t.ctx ~label:"cceh.ml:check depth" (g >= 1 && g <= max_global_depth)
    "global depth corrupt";
  let dir = dir_ptr t in
  Jaaru.Ctx.check t.ctx ~label:"cceh.ml:check dirptr"
    (Region_alloc.contains_object t.alloc dir)
    "directory pointer outside the heap";
  for i = 0 to (1 lsl g) - 1 do
    Jaaru.Ctx.progress t.ctx ~label:"cceh.ml:check dir" ();
    let seg = read_dir_entry t dir i in
    Jaaru.Ctx.check t.ctx ~label:"cceh.ml:check entry"
      (Region_alloc.contains_object t.alloc seg)
      "directory entry outside the heap";
    let l = seg_depth t seg in
    Jaaru.Ctx.check t.ctx ~label:"cceh.ml:check local" (l >= 1 && l <= g)
      "local depth out of range";
    for s = 0 to slots_per_segment - 1 do
      let k = slot_key t seg s in
      if k <> 0 then begin
        (* The key must still be routed to a segment that holds it. *)
        let home = read_dir_entry t dir (hash k land ((1 lsl g) - 1)) in
        let found =
          match find_slot t home k with `Match _ -> true | `Full_or _ -> false
        in
        Jaaru.Ctx.check t.ctx ~label:"cceh.ml:check routing" found
          "occupied slot's key is not reachable through the directory"
      end
    done
  done

let global_depth t = global_depth t
