type bugs = { flush_object_not_pointer : bool }

let no_bugs = { flush_object_not_pointer = false }

let magic_value = 0x3a55
let slots = 8

(* Metadata line at the region base. *)
let off_magic = 0
let off_root = 64 (* separate line from the magic commit *)

(* Layer node: key count, next-node chain, then key and link arrays. *)
let nd_nkeys = 0
let nd_next = 8
let nd_key i = 16 + (8 * i)
let nd_link i = 16 + (8 * slots) + (8 * i)
let node_size = 16 + (16 * slots)

type t = { ctx : Jaaru.Ctx.t; base : Pmem.Addr.t; alloc : Region_alloc.t; bugs : bugs }

let store64 t label addr v = Jaaru.Ctx.store64 t.ctx ~label addr v
let load64 t label addr = Jaaru.Ctx.load64 t.ctx ~label addr
let flush t label addr size = Jaaru.Ctx.clflush t.ctx ~label addr size
let fence t label = Jaaru.Ctx.sfence t.ctx ~label ()

let new_node t =
  let n = Region_alloc.alloc t.alloc ~label:"p_masstree.ml:alloc node" node_size in
  for w = 0 to (node_size / 8) - 1 do
    store64 t "p_masstree.ml:node init" (n + (8 * w)) 0
  done;
  flush t "p_masstree.ml:flush node" n node_size;
  fence t "p_masstree.ml:fence node";
  n

let create_or_open ?(bugs = no_bugs) ?alloc_bugs ctx =
  let region = Jaaru.Ctx.region ctx in
  let base = region.Pmem.Region.base in
  let alloc =
    Region_alloc.create_or_open ?bugs:alloc_bugs ctx ~base:(base + 128)
      ~limit:(Pmem.Region.limit region)
  in
  let t = { ctx; base; alloc; bugs } in
  if load64 t "p_masstree.ml:read magic" (base + off_magic) <> magic_value then begin
    let root = new_node t in
    store64 t "p_masstree.ml:ctor root" (base + off_root) root;
    flush t "p_masstree.ml:flush root" (base + off_root) 8;
    fence t "p_masstree.ml:fence root";
    store64 t "p_masstree.ml:ctor magic" (base + off_magic) magic_value;
    flush t "p_masstree.ml:flush magic" (base + off_magic) 8;
    fence t "p_masstree.ml:fence magic"
  end;
  t

let root t = load64 t "p_masstree.ml:read root" (t.base + off_root)

(* Find a key's link slot within a layer's node chain. *)
let find_in_layer t first key =
  let rec walk n =
    Jaaru.Ctx.progress t.ctx ~label:"p_masstree.ml:layer walk" ();
    let c = load64 t "p_masstree.ml:read nkeys" (n + nd_nkeys) in
    Jaaru.Ctx.check t.ctx ~label:"p_masstree.ml:nkeys sanity" (c >= 0 && c <= slots)
      "node key count corrupt";
    let rec scan i =
      if i >= c then
        let nx = load64 t "p_masstree.ml:read next" (n + nd_next) in
        if nx = 0 then `Absent n else walk nx
      else if load64 t "p_masstree.ml:read key" (n + nd_key i) = key then `Found (n + nd_link i)
      else scan (i + 1)
    in
    scan 0
  in
  walk first

(* Append (key, link) to the layer: link slot persists first, the key-count
   commit makes the entry visible. A full tail grows the chain with a fresh
   persisted node before the next pointer publishes it. *)
let rec add_entry t node key link ~flush_link_slot =
  let c = load64 t "p_masstree.ml:add nkeys" (node + nd_nkeys) in
  if c >= slots then begin
    let fresh = new_node t in
    store64 t "p_masstree.ml:grow link" (node + nd_next) fresh;
    flush t "p_masstree.ml:flush grow" (node + nd_next) 8;
    fence t "p_masstree.ml:fence grow";
    add_entry t fresh key link ~flush_link_slot
  end
  else begin
    store64 t "p_masstree.ml:add key" (node + nd_key c) key;
    store64 t "p_masstree.ml:add link" (node + nd_link c) link;
    flush t "p_masstree.ml:flush key" (node + nd_key c) 8;
    flush_link_slot (node + nd_link c);
    fence t "p_masstree.ml:fence entry";
    store64 t "p_masstree.ml:commit nkeys" (node + nd_nkeys) (c + 1);
    flush t "p_masstree.ml:flush nkeys" (node + nd_nkeys) 8;
    fence t "p_masstree.ml:fence nkeys"
  end

let insert t ~slice0 ~slice1 v =
  Jaaru.Ctx.check t.ctx ~label:"p_masstree.ml:insert"
    (slice0 <> 0 && slice1 <> 0 && v <> 0)
    "slices and value must be non-zero";
  let layer1 =
    match find_in_layer t (root t) slice0 with
    | `Found slot -> load64 t "p_masstree.ml:read layer link" slot
    | `Absent tail ->
        let l1 = new_node t in
        let flush_link_slot slot_addr =
          if t.bugs.flush_object_not_pointer then
            (* The bug: flush the referenced node again, not the pointer. *)
            flush t "p_masstree.ml:flush object (bug)" l1 node_size
          else flush t "p_masstree.ml:flush link slot" slot_addr 8
        in
        add_entry t tail slice0 l1 ~flush_link_slot;
        l1
  in
  Jaaru.Ctx.check t.ctx ~label:"p_masstree.ml:layer sane"
    (Region_alloc.contains_object t.alloc layer1)
    "second-layer pointer outside the heap";
  match find_in_layer t layer1 slice1 with
  | `Found slot ->
      store64 t "p_masstree.ml:update value" slot v;
      flush t "p_masstree.ml:flush update" slot 8;
      fence t "p_masstree.ml:fence update"
  | `Absent tail ->
      add_entry t tail slice1 v ~flush_link_slot:(fun slot_addr ->
          flush t "p_masstree.ml:flush value slot" slot_addr 8)

let remove t ~slice0 ~slice1 =
  match find_in_layer t (root t) slice0 with
  | `Absent _ -> ()
  | `Found slot -> (
      let layer1 = load64 t "p_masstree.ml:remove layer" slot in
      match find_in_layer t layer1 slice1 with
      | `Absent _ -> ()
      | `Found vslot ->
          (* A zero value is the absence tombstone; the single 8-byte store
             is the atomic commit. *)
          store64 t "p_masstree.ml:remove tombstone" vslot 0;
          flush t "p_masstree.ml:flush remove" vslot 8;
          fence t "p_masstree.ml:fence remove")

let lookup t ~slice0 ~slice1 =
  match find_in_layer t (root t) slice0 with
  | `Absent _ -> None
  | `Found slot -> (
      let layer1 = load64 t "p_masstree.ml:lookup layer" slot in
      match find_in_layer t layer1 slice1 with
      | `Absent _ -> None
      | `Found vslot ->
          let v = load64 t "p_masstree.ml:lookup value" vslot in
          if v = 0 then None else Some v)

let check t =
  Jaaru.Ctx.check t.ctx ~label:"p_masstree.ml:check magic"
    (load64 t "p_masstree.ml:read magic" (t.base + off_magic) = magic_value)
    "magic word corrupt";
  let check_layer first ~on_link =
    let rec walk n =
      Jaaru.Ctx.progress t.ctx ~label:"p_masstree.ml:check walk" ();
      Jaaru.Ctx.check t.ctx ~label:"p_masstree.ml:check node"
        (Region_alloc.contains_object t.alloc n)
        "layer node outside the heap";
      let c = load64 t "p_masstree.ml:check nkeys" (n + nd_nkeys) in
      Jaaru.Ctx.check t.ctx ~label:"p_masstree.ml:check count" (c >= 0 && c <= slots)
        "node key count corrupt";
      for i = 0 to c - 1 do
        let k = load64 t "p_masstree.ml:check key" (n + nd_key i) in
        Jaaru.Ctx.check t.ctx ~label:"p_masstree.ml:check key" (k <> 0)
          "committed entry with a zero key";
        on_link (load64 t "p_masstree.ml:check link" (n + nd_link i))
      done;
      let nx = load64 t "p_masstree.ml:check next" (n + nd_next) in
      if nx <> 0 then walk nx
    in
    walk first
  in
  check_layer (root t) ~on_link:(fun l1 ->
      Jaaru.Ctx.check t.ctx ~label:"p_masstree.ml:check layer link"
        (Region_alloc.contains_object t.alloc l1)
        "layer link outside the heap";
      (* Zero values are removal tombstones, so any value is acceptable in
         the second layer. *)
      check_layer l1 ~on_link:(fun _ -> ()))
