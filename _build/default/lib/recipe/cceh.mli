(** CCEH — cache-line-conscious extendible hashing (RECIPE benchmark).

    A directory of 2^G segment pointers (LSB extendible hashing) over
    segments of 16 key/value slots probed in short cache-line-sized runs.
    Inserts persist the value before the key-commit store; segment splits
    allocate and persist the new segment before redirecting directory
    entries; directory doubling persists the new directory before swapping
    the pointer.

    The paper found three missing-constructor-flush bugs in CCEH (Fig. 13
    #1–3); the three toggles below seed them. On recycled (poisoned)
    allocations each lets recovery observe garbage where initialised state
    should be. *)

type bugs = {
  ctor_skip_dir_flush : bool;  (** directory array not flushed before commit *)
  ctor_skip_segment_flush : bool;  (** initial segments not flushed *)
  ctor_skip_meta_flush : bool;  (** global depth / directory pointer not flushed *)
}

val no_bugs : bugs

type t

val create_or_open : ?bugs:bugs -> ?alloc_bugs:Region_alloc.bugs -> Jaaru.Ctx.t -> t

val insert : t -> int -> int -> unit
(** Keys must be non-zero. Duplicates update in place. *)

val lookup : t -> int -> int option
val remove : t -> int -> unit

val check : t -> unit
(** Recovery verification: magic and depths sane, every directory entry
    points at an allocated segment with a legal local depth, every occupied
    slot's key is still routed to its segment by the directory. *)

val global_depth : t -> int
