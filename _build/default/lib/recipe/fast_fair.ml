type bugs = {
  ctor_skip_header_flush : bool;
  missing_entry_flush : bool;
  ctor_skip_root_flush : bool;
}

let no_bugs =
  { ctor_skip_header_flush = false; missing_entry_flush = false; ctor_skip_root_flush = false }

let magic_value = 0xfa57
let kind_leaf = 1
let kind_internal = 2
let fanout = 8

(* Metadata at the region base; allocator root on the next line. *)
let off_magic = 0
let off_root = 64 (* separate line from the magic commit *)

(* Node: one header line, then eight 8-byte slots. *)
let nd_kind = 0
let nd_sibling = 8
let nd_high = 16
let nd_slots = 64
let node_size = nd_slots + (8 * fanout)

type t = { ctx : Jaaru.Ctx.t; base : Pmem.Addr.t; alloc : Region_alloc.t; bugs : bugs }

let store64 t label addr v = Jaaru.Ctx.store64 t.ctx ~label addr v
let load64 t label addr = Jaaru.Ctx.load64 t.ctx ~label addr
let flush t label addr size = Jaaru.Ctx.clflush t.ctx ~label addr size
let fence t label = Jaaru.Ctx.sfence t.ctx ~label ()

let kind t n = load64 t "fast_fair.ml:kind" (n + nd_kind)
let sibling t n = load64 t "fast_fair.ml:sibling" (n + nd_sibling)
let high_key t n = load64 t "fast_fair.ml:high" (n + nd_high)
let slot_addr n i = n + nd_slots + (8 * i)
let read_slot t n i = load64 t "fast_fair.ml:slot" (slot_addr n i)
let entry_key t e = load64 t "fast_fair.ml:entry key" e
let entry_payload t e = load64 t "fast_fair.ml:entry payload" (e + 8)

let root t = load64 t "fast_fair.ml:read root" (t.base + off_root)

(* A fresh node: header and zeroed slots; only the header flush is
   bug-toggleable (the paper's header-constructor bug). *)
let new_node t ~kind:k ~sib ~high =
  let n = Region_alloc.alloc t.alloc ~label:"fast_fair.ml:alloc node" node_size in
  store64 t "fast_fair.ml:init kind" (n + nd_kind) k;
  store64 t "fast_fair.ml:init sibling" (n + nd_sibling) sib;
  store64 t "fast_fair.ml:init high" (n + nd_high) high;
  if not t.bugs.ctor_skip_header_flush then begin
    flush t "fast_fair.ml:flush header" n 64;
    fence t "fast_fair.ml:fence header"
  end;
  for i = 0 to fanout - 1 do
    store64 t "fast_fair.ml:init slot" (slot_addr n i) 0
  done;
  flush t "fast_fair.ml:flush slots" (n + nd_slots) (8 * fanout);
  fence t "fast_fair.ml:fence slots";
  n

let new_entry t k payload =
  let e = Region_alloc.alloc t.alloc ~label:"fast_fair.ml:alloc entry" 16 in
  store64 t "fast_fair.ml:entry init key" e k;
  store64 t "fast_fair.ml:entry init payload" (e + 8) payload;
  if not t.bugs.missing_entry_flush then begin
    flush t "fast_fair.ml:flush entry" e 16;
    fence t "fast_fair.ml:fence entry"
  end;
  e

let set_root t n =
  store64 t "fast_fair.ml:set root" (t.base + off_root) n;
  if not t.bugs.ctor_skip_root_flush then begin
    flush t "fast_fair.ml:flush root" (t.base + off_root) 8;
    fence t "fast_fair.ml:fence root"
  end

let create_or_open ?(bugs = no_bugs) ?alloc_bugs ctx =
  let region = Jaaru.Ctx.region ctx in
  let base = region.Pmem.Region.base in
  let alloc =
    Region_alloc.create_or_open ?bugs:alloc_bugs ctx ~base:(base + 128)
      ~limit:(Pmem.Region.limit region)
  in
  let t = { ctx; base; alloc; bugs } in
  if load64 t "fast_fair.ml:read magic" (base + off_magic) <> magic_value then begin
    let leaf = new_node t ~kind:kind_leaf ~sib:0 ~high:0 in
    set_root t leaf;
    store64 t "fast_fair.ml:ctor magic" (base + off_magic) magic_value;
    flush t "fast_fair.ml:flush magic" (base + off_magic) 8;
    fence t "fast_fair.ml:fence magic"
  end;
  t

(* Raw occupancy: slots fill left to right and scanning stops at the first
   zero (the split's truncation commit is a single atomic zero store). *)
let occupancy t n =
  let rec go i = if i >= fanout then i else if read_slot t n i = 0 then i else go (i + 1) in
  go 0

(* Logical occupancy additionally drops a stale tail: entries at or above a
   non-zero high key were moved to the sibling by a split whose truncation
   store did not persist. Readers skip them; writers repair them. Slot 0 of
   an internal node (the 0-key leftmost entry) is exempt. *)
let logical_occupancy t n =
  let hk = high_key t n in
  let raw = occupancy t n in
  if hk = 0 then raw
  else begin
    let internal = kind t n = kind_internal in
    let rec go i =
      if i >= raw then i
      else if entry_key t (read_slot t n i) >= hk && not (internal && i = 0) then i
      else go (i + 1)
    in
    go 0
  end

(* Complete a crashed split's truncation: persist the zero terminator where
   the stale tail begins. Idempotent; called by writers before they touch a
   node. *)
let repair t n =
  let logical = logical_occupancy t n in
  if logical < occupancy t n then begin
    store64 t "fast_fair.ml:repair truncate" (slot_addr n logical) 0;
    flush t "fast_fair.ml:flush repair" (slot_addr n logical) 8;
    fence t "fast_fair.ml:fence repair"
  end

(* --- descent -------------------------------------------------------------- *)

(* In an internal node, the child for [k] is the last entry with key <= k.
   Consecutive duplicate slots (a crashed shift) point at the same entry, so
   they are harmless. *)
let child_for t n k =
  let m = logical_occupancy t n in
  let rec go i best =
    if i >= m then best
    else
      let e = read_slot t n i in
      if entry_key t e <= k then go (i + 1) (entry_payload t e) else best
  in
  go 1 (entry_payload t (read_slot t n 0))

(* Follow sibling links when the key lies beyond this node's high key — the
   FAIR rule that makes half-finished splits invisible. *)
let rec chase t n k =
  Jaaru.Ctx.progress t.ctx ~label:"fast_fair.ml:chase" ();
  let hk = high_key t n in
  let sib = sibling t n in
  if hk <> 0 && k >= hk && sib <> 0 then chase t sib k else n

let rec descend t n k ~path =
  Jaaru.Ctx.progress t.ctx ~label:"fast_fair.ml:descend" ();
  let n = chase t n k in
  let kd = kind t n in
  Jaaru.Ctx.check t.ctx ~label:"fast_fair.ml:descend kind" (kd = kind_leaf || kd = kind_internal)
    "node kind corrupt";
  if kd = kind_leaf then (n, path) else descend t (child_for t n k) k ~path:(n :: path)

(* --- lookup --------------------------------------------------------------- *)

let lookup t k =
  let leaf, _ = descend t (root t) k ~path:[] in
  let m = logical_occupancy t leaf in
  let rec scan i =
    if i >= m then None
    else
      let e = read_slot t leaf i in
      if entry_key t e = k then Some (entry_payload t e) else scan (i + 1)
  in
  scan 0

(* --- insert --------------------------------------------------------------- *)

(* FAST in-node insert: shift slots right one atomic store at a time,
   flushing each, then commit the new slot. The node must not be full. *)
let insert_slot t n entry k =
  repair t n;
  let m = occupancy t n in
  let rec position i =
    if i >= m then i else if entry_key t (read_slot t n i) > k then i else position (i + 1)
  in
  let p = position 0 in
  for j = m - 1 downto p do
    store64 t "fast_fair.ml:shift" (slot_addr n (j + 1)) (read_slot t n j);
    flush t "fast_fair.ml:flush shift" (slot_addr n (j + 1)) 8;
    fence t "fast_fair.ml:fence shift"
  done;
  store64 t "fast_fair.ml:commit slot" (slot_addr n p) entry;
  flush t "fast_fair.ml:flush slot" (slot_addr n p) 8;
  fence t "fast_fair.ml:fence slot"

(* Update in place: slots are 8-byte pointers, so swapping in a fresh record
   is atomic. *)
let try_update t n k v =
  let m = logical_occupancy t n in
  let rec scan i =
    if i >= m then false
    else
      let e = read_slot t n i in
      if entry_key t e = k then begin
        let e' = new_entry t k v in
        store64 t "fast_fair.ml:swap entry" (slot_addr n i) e';
        flush t "fast_fair.ml:flush swap" (slot_addr n i) 8;
        fence t "fast_fair.ml:fence swap";
        true
      end
      else scan (i + 1)
  in
  scan 0

(* Split [n]: persist a sibling holding the upper half, publish the
   separator as [n]'s high key, commit the sibling link, clear the moved
   slots, then tell the parent. Returns (separator, sibling). *)
let split_node t n =
  let sep = entry_key t (read_slot t n (fanout / 2)) in
  let sib = new_node t ~kind:(kind t n) ~sib:(sibling t n) ~high:(high_key t n) in
  for i = fanout / 2 to fanout - 1 do
    store64 t "fast_fair.ml:split copy" (slot_addr sib (i - (fanout / 2))) (read_slot t n i)
  done;
  flush t "fast_fair.ml:flush split" sib node_size;
  fence t "fast_fair.ml:fence split";
  store64 t "fast_fair.ml:publish high" (n + nd_high) sep;
  flush t "fast_fair.ml:flush high" (n + nd_high) 8;
  fence t "fast_fair.ml:fence high";
  store64 t "fast_fair.ml:link sibling" (n + nd_sibling) sib;
  flush t "fast_fair.ml:flush sibling" (n + nd_sibling) 8;
  fence t "fast_fair.ml:fence sibling";
  (* Truncation commit: one atomic zero store ends the node at the median;
     stale slots beyond the terminator are unreachable. *)
  store64 t "fast_fair.ml:truncate" (slot_addr n (fanout / 2)) 0;
  flush t "fast_fair.ml:flush truncate" (slot_addr n (fanout / 2)) 8;
  fence t "fast_fair.ml:fence truncate";
  (sep, sib)

let rec insert_into t n k entry ~path =
  repair t n;
  if occupancy t n < fanout then insert_slot t n entry k
  else begin
    let sep, sib = split_node t n in
    (* Tell the parent about the new sibling (or grow a new root). *)
    (match path with
    | parent :: rest ->
        let sep_entry = new_entry t sep sib in
        insert_into t parent sep sep_entry ~path:rest
    | [] ->
        let e0 = new_entry t 0 n in
        let e1 = new_entry t sep sib in
        let nroot = new_node t ~kind:kind_internal ~sib:0 ~high:0 in
        store64 t "fast_fair.ml:root slot0" (slot_addr nroot 0) e0;
        store64 t "fast_fair.ml:root slot1" (slot_addr nroot 1) e1;
        flush t "fast_fair.ml:flush new root" nroot node_size;
        fence t "fast_fair.ml:fence new root";
        set_root t nroot);
    let target = if k >= sep then sib else n in
    insert_into t target k entry ~path:[] (* the node now has room *)
  end

let insert t k v =
  Jaaru.Ctx.check t.ctx ~label:"fast_fair.ml:insert" (k <> 0) "keys must be non-zero";
  let leaf, path = descend t (root t) k ~path:[] in
  if not (try_update t leaf k v) then begin
    let entry = new_entry t k v in
    insert_into t leaf k entry ~path
  end

(* --- delete ----------------------------------------------------------------- *)

(* FAIR deletion: shift the slots left over the victim, one atomic 8-byte
   store at a time (transiently duplicating a neighbour, which readers
   tolerate), then zero the old tail slot as the commit. The key stays in
   inner nodes as a routing separator, which is harmless. *)
let remove t k =
  let leaf, _ = descend t (root t) k ~path:[] in
  repair t leaf;
  let m = occupancy t leaf in
  let rec position i =
    if i >= m then None
    else if entry_key t (read_slot t leaf i) = k then Some i
    else position (i + 1)
  in
  match position 0 with
  | None -> ()
  | Some p ->
      for j = p to m - 2 do
        store64 t "fast_fair.ml:delete shift" (slot_addr leaf j) (read_slot t leaf (j + 1));
        flush t "fast_fair.ml:flush delete shift" (slot_addr leaf j) 8;
        fence t "fast_fair.ml:fence delete shift"
      done;
      store64 t "fast_fair.ml:delete commit" (slot_addr leaf (m - 1)) 0;
      flush t "fast_fair.ml:flush delete" (slot_addr leaf (m - 1)) 8;
      fence t "fast_fair.ml:fence delete"

(* --- verification --------------------------------------------------------- *)

let rec check_node t n ~depth =
  Jaaru.Ctx.progress t.ctx ~label:"fast_fair.ml:check" ();
  Jaaru.Ctx.check t.ctx ~label:"fast_fair.ml:check depth" (depth < 16) "tree too deep";
  let kd = kind t n in
  Jaaru.Ctx.check t.ctx ~label:"fast_fair.ml:check kind" (kd = kind_leaf || kd = kind_internal)
    "node kind corrupt";
  let m = logical_occupancy t n in
  let hk = high_key t n in
  let rec keys i last =
    if i >= m then ()
    else begin
      let e = read_slot t n i in
      let k = entry_key t e in
      Jaaru.Ctx.check t.ctx ~label:"fast_fair.ml:check order"
        (k >= last)
        "keys out of order beyond duplicate tolerance";
      Jaaru.Ctx.check t.ctx ~label:"fast_fair.ml:check bound"
        (hk = 0 || k < hk || (kd = kind_internal && i = 0))
        "key at or above the node's high key";
      keys (i + 1) k
    end
  in
  keys 0 0;
  if kd = kind_internal then begin
    Jaaru.Ctx.check t.ctx ~label:"fast_fair.ml:check fanout" (m >= 1) "internal node empty";
    ignore hk;
    for i = 0 to m - 1 do
      check_node t (entry_payload t (read_slot t n i)) ~depth:(depth + 1)
    done
  end

let leftmost_leaf t =
  let rec go n =
    Jaaru.Ctx.progress t.ctx ~label:"fast_fair.ml:leftmost" ();
    if kind t n = kind_leaf then n else go (entry_payload t (read_slot t n 0))
  in
  go (root t)

let check t =
  Jaaru.Ctx.check t.ctx ~label:"fast_fair.ml:check magic"
    (load64 t "fast_fair.ml:read magic" (t.base + off_magic) = magic_value)
    "magic word corrupt";
  check_node t (root t) ~depth:0;
  (* Leaf chain: globally nondecreasing keys, with duplicate tolerance. *)
  let rec chain n last =
    Jaaru.Ctx.progress t.ctx ~label:"fast_fair.ml:check chain" ();
    let m = logical_occupancy t n in
    let last =
      let rec keys i last =
        if i >= m then last
        else begin
          let k = entry_key t (read_slot t n i) in
          Jaaru.Ctx.check t.ctx ~label:"fast_fair.ml:check chain order" (k >= last)
            "leaf chain keys out of order";
          keys (i + 1) k
        end
      in
      keys 0 last
    in
    let sib = sibling t n in
    if sib <> 0 then chain sib last
  in
  chain (leftmost_leaf t) 0

let entries t =
  let rec chain n acc =
    Jaaru.Ctx.progress t.ctx ~label:"fast_fair.ml:entries" ();
    let m = logical_occupancy t n in
    let rec keys i acc =
      if i >= m then acc
      else
        let e = read_slot t n i in
        let k = entry_key t e in
        let acc =
          match acc with (k', _) :: _ when k' = k -> acc | _ -> (k, entry_payload t e) :: acc
        in
        keys (i + 1) acc
    in
    let acc = keys 0 acc in
    let sib = sibling t n in
    if sib = 0 then List.rev acc else chain sib acc
  in
  chain (leftmost_leaf t) []
