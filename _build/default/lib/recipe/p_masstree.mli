(** P-Masstree — a persistent two-layer masstree slice (RECIPE benchmark).

    Keys are two 8-byte slices. The first layer maps slice 0 to a
    second-layer node; the second layer maps slice 1 to the value. Each
    layer is a chain of 8-slot nodes; entry insertion persists the link
    before the key-commit store, and fresh nodes are persisted before the
    chain pointer publishes them.

    The toggle seeds the paper's P-Masstree bug (Fig. 13 #18, "Flushed
    referenced object instead of pointer"): when linking a new second-layer
    node the code flushes the {e node} (again) instead of the 8-byte slot
    holding the pointer to it. *)

type bugs = {
  flush_object_not_pointer : bool;
      (** Flush the referenced layer node instead of the pointer slot. *)
}

val no_bugs : bugs

type t

val create_or_open : ?bugs:bugs -> ?alloc_bugs:Region_alloc.bugs -> Jaaru.Ctx.t -> t

val insert : t -> slice0:int -> slice1:int -> int -> unit
(** Both slices must be non-zero; the value must be non-zero. *)

val remove : t -> slice0:int -> slice1:int -> unit
(** Stores the zero tombstone over the value slot — a single atomic commit;
    the slot is revived in place by a later insert of the same key. *)

val lookup : t -> slice0:int -> slice1:int -> int option

val check : t -> unit
(** Recovery verification: node shapes and layer links valid (zero values
    are removal tombstones and legal). *)
