lib/recipe/p_art.ml: Jaaru List Pmem Region_alloc
