lib/recipe/p_bwtree.mli: Jaaru Region_alloc
