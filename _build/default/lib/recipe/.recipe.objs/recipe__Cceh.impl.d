lib/recipe/cceh.ml: Hashtbl Jaaru List Pmem Region_alloc
