lib/recipe/p_clht.ml: Jaaru Pmem Region_alloc
