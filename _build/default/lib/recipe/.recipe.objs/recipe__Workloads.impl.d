lib/recipe/workloads.ml: Cceh Fast_fair Jaaru List P_art P_bwtree P_clht P_masstree Pmem Region_alloc
