lib/recipe/p_masstree.mli: Jaaru Region_alloc
