lib/recipe/region_alloc.ml: Jaaru Pmem
