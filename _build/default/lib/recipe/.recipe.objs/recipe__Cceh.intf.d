lib/recipe/cceh.mli: Jaaru Region_alloc
