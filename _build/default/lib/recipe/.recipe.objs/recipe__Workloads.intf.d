lib/recipe/workloads.mli: Jaaru
