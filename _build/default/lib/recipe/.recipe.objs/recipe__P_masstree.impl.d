lib/recipe/p_masstree.ml: Jaaru Pmem Region_alloc
