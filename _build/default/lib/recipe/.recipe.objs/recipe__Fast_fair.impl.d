lib/recipe/fast_fair.ml: Jaaru List Pmem Region_alloc
