lib/recipe/region_alloc.mli: Jaaru Pmem
