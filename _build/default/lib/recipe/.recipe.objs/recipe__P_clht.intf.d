lib/recipe/p_clht.mli: Jaaru Region_alloc
