lib/recipe/p_bwtree.ml: Jaaru List Option Pmem Region_alloc
