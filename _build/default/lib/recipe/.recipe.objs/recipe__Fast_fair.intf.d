lib/recipe/fast_fair.mli: Jaaru Region_alloc
