lib/recipe/p_art.mli: Jaaru Region_alloc
