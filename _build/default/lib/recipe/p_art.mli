(** P-ART — a persistent adaptive radix tree (RECIPE benchmark).

    32-bit keys are consumed a byte at a time through Node4 / Node16 inner
    nodes (growing adaptively) down to tagged leaf records. Entry additions
    persist the child pointer and key byte before the count-commit store;
    node growth persists the replacement node before the single parent-slot
    swap. Inner nodes carry a ROWEX-style lock word that writers take around
    mutations; recovery walks the tree and clears every lock before the
    first operation.

    Toggles seed the paper's three P-ART bugs (Fig. 13 #7–9): the epoch
    machinery deferring flushes through a volatile (DRAM) list that a crash
    empties, a missing flush in the tree constructor, and recovery relying
    on a volatile structure to find locks to release. *)

type bugs = {
  epoch_volatile_flush : bool;
      (** New nodes register in a volatile epoch list whose deferred flushes
          a crash silently drops. *)
  ctor_skip_root_flush : bool;  (** Tree constructor: root slot not flushed. *)
  volatile_lock_recovery : bool;
      (** Recovery consults a volatile pending-unlock list (empty after a
          crash) instead of sweeping the tree for leaked locks. *)
}

val no_bugs : bugs

type t

val create_or_open : ?bugs:bugs -> ?alloc_bugs:Region_alloc.bugs -> Jaaru.Ctx.t -> t

val insert : t -> int -> int -> unit
(** Keys must be in [1, 2^32). *)

val epoch_end : t -> unit
(** Flushes everything the (buggy) volatile epoch deferred. A no-op in the
    fixed configuration, whose constructors flush eagerly. *)

val lookup : t -> int -> int option

val remove : t -> int -> unit
(** Zeroes the leaf's routing slot — a single atomic commit store. In
    Node4/16 the key byte remains as a tombstone that later inserts reuse;
    empty spine nodes are not collapsed. *)

val check : t -> unit
(** Recovery verification: node kinds and counts, key bytes consistent with
    the descent path, leaf keys routed correctly, locks clear. *)
