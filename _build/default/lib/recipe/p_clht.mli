(** P-CLHT — a persistent cache-line hash table (RECIPE benchmark).

    One bucket is one cache line: a lock word, three key/value slot pairs and
    an overflow pointer. Inserts take the bucket lock, persist the value
    before the key-commit store, and link fully-persisted overflow buckets
    with a single pointer store. Locks are volatile in spirit: recovery
    walks the table and resets every lock word before the first operation.

    Toggles seed the paper's three P-CLHT bugs (Fig. 13 #15–17): missing
    flushes in the clht constructor, the hashtable object and the hashtable
    array — plus [skip_lock_reset], which turns a crash inside a critical
    section into the paper's "stuck in an infinite loop" manifestation. *)

type bugs = {
  ctor_skip_meta_flush : bool;  (** clht constructor: root pointer not flushed *)
  skip_ht_flush : bool;  (** hashtable object (bucket count / table pointer) *)
  skip_table_flush : bool;  (** bucket array initialisation *)
  skip_lock_reset : bool;  (** recovery does not clear persisted lock words *)
}

val no_bugs : bugs

type t

val create_or_open : ?bugs:bugs -> ?alloc_bugs:Region_alloc.bugs -> ?nbuckets:int -> Jaaru.Ctx.t -> t

val insert : t -> int -> int -> unit
(** Keys must be non-zero. Spins on the bucket lock (the checker's loop
    detector reports a lock leaked across a crash). *)

val lookup : t -> int -> int option
val remove : t -> int -> unit

val check : t -> unit
(** Recovery verification: metadata sane, locks clear, every occupied slot
    routed to its bucket, overflow chains valid. *)
