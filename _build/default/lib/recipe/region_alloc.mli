(** The persistent bump allocator backing the RECIPE indexes.

    RECIPE's indexes allocate from a persistent memory pool whose allocation
    metadata must itself be crash consistent. This is a minimal such
    allocator: a root block holding a magic word and the bump pointer. The
    bump advance is flushed before control returns, so an object handed out
    before a crash is still accounted for afterwards; several of the paper's
    P-BwTree bugs (Fig. 13 #13, "Missing flush in AllocationMeta
    constructor") live exactly here. *)

type bugs = {
  missing_meta_flush : bool;
      (** The allocator constructor does not flush the bump pointer before
          committing the magic word. *)
  missing_bump_flush : bool;  (** Allocations do not flush the bump advance. *)
}

val no_bugs : bugs

type t

val create_or_open : ?bugs:bugs -> Jaaru.Ctx.t -> base:Pmem.Addr.t -> limit:Pmem.Addr.t -> t
(** Metadata occupies two cache lines at [base] (the magic commit and the
    bump pointer must not share a line); objects are carved from
    [base + 128] up to [limit]. *)

val alloc : t -> ?label:string -> int -> Pmem.Addr.t
(** 16-byte-aligned allocation. Fails the checker when the region is
    exhausted. *)

val end_of_heap : t -> Pmem.Addr.t
(** Current committed bump pointer (reads PM). *)

val contains_object : t -> Pmem.Addr.t -> bool
(** Whether an address lies inside the allocated part of the region. *)
