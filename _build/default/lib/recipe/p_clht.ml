type bugs = {
  ctor_skip_meta_flush : bool;
  skip_ht_flush : bool;
  skip_table_flush : bool;
  skip_lock_reset : bool;
}

let no_bugs =
  {
    ctor_skip_meta_flush = false;
    skip_ht_flush = false;
    skip_table_flush = false;
    skip_lock_reset = false;
  }

let magic_value = 0xc147
let slots_per_bucket = 3

(* Metadata line at the region base. *)
let off_magic = 0
let off_ht = 64 (* separate line from the magic commit *)

(* The hashtable object. *)
let ht_nbuckets = 0
let ht_table = 8
let ht_size = 16

(* A bucket is exactly one cache line. *)
let bk_lock = 0
let bk_key i = 8 + (8 * i)
let bk_val i = 32 + (8 * i)
let bk_next = 56
let bucket_size = 64

type t = { ctx : Jaaru.Ctx.t; base : Pmem.Addr.t; alloc : Region_alloc.t; bugs : bugs }

let store64 t label addr v = Jaaru.Ctx.store64 t.ctx ~label addr v
let load64 t label addr = Jaaru.Ctx.load64 t.ctx ~label addr
let flush t label addr size = Jaaru.Ctx.clflush t.ctx ~label addr size
let fence t label = Jaaru.Ctx.sfence t.ctx ~label ()

let hash k = (k * 0x517cc1b727220a95 land max_int) lsr 17

let ht_ptr t = load64 t "p_clht.ml:read ht" (t.base + off_ht)
let nbuckets t = load64 t "p_clht.ml:read nbuckets" (ht_ptr t + ht_nbuckets)
let table t = load64 t "p_clht.ml:read table" (ht_ptr t + ht_table)
let bucket_addr t k = table t + (bucket_size * (hash k mod nbuckets t))

let new_bucket t =
  let b = Region_alloc.alloc t.alloc ~label:"p_clht.ml:alloc bucket" bucket_size in
  for w = 0 to (bucket_size / 8) - 1 do
    store64 t "p_clht.ml:bucket init" (b + (8 * w)) 0
  done;
  flush t "p_clht.ml:flush bucket" b bucket_size;
  fence t "p_clht.ml:fence bucket";
  b

let constructor t ~nbuckets:n =
  let table = Region_alloc.alloc t.alloc ~label:"p_clht.ml:alloc table" (bucket_size * n) in
  for w = 0 to (bucket_size * n / 8) - 1 do
    store64 t "p_clht.ml:table init" (table + (8 * w)) 0
  done;
  if not t.bugs.skip_table_flush then begin
    flush t "p_clht.ml:flush table" table (bucket_size * n);
    fence t "p_clht.ml:fence table"
  end;
  let ht = Region_alloc.alloc t.alloc ~label:"p_clht.ml:alloc ht" ht_size in
  store64 t "p_clht.ml:ht nbuckets" (ht + ht_nbuckets) n;
  store64 t "p_clht.ml:ht table" (ht + ht_table) table;
  if not t.bugs.skip_ht_flush then begin
    flush t "p_clht.ml:flush ht" ht ht_size;
    fence t "p_clht.ml:fence ht"
  end;
  store64 t "p_clht.ml:meta ht" (t.base + off_ht) ht;
  if not t.bugs.ctor_skip_meta_flush then begin
    flush t "p_clht.ml:flush meta" (t.base + off_ht) 8;
    fence t "p_clht.ml:fence meta"
  end;
  store64 t "p_clht.ml:meta magic" (t.base + off_magic) magic_value;
  flush t "p_clht.ml:flush magic" (t.base + off_magic) 8;
  fence t "p_clht.ml:fence magic"

(* Recovery discipline: locks do not survive a crash; clear every lock word
   in the table and its overflow chains before any operation. *)
let reset_locks t =
  let n = nbuckets t in
  let tbl = table t in
  for i = 0 to n - 1 do
    let rec clear b =
      Jaaru.Ctx.progress t.ctx ~label:"p_clht.ml:lock reset" ();
      store64 t "p_clht.ml:clear lock" (b + bk_lock) 0;
      flush t "p_clht.ml:flush clear lock" (b + bk_lock) 8;
      let nx = load64 t "p_clht.ml:reset next" (b + bk_next) in
      if nx <> 0 then clear nx
    in
    clear (tbl + (bucket_size * i))
  done;
  fence t "p_clht.ml:fence lock reset"

let create_or_open ?(bugs = no_bugs) ?alloc_bugs ?(nbuckets = 4) ctx =
  let region = Jaaru.Ctx.region ctx in
  let base = region.Pmem.Region.base in
  let alloc =
    Region_alloc.create_or_open ?bugs:alloc_bugs ctx ~base:(base + 128)
      ~limit:(Pmem.Region.limit region)
  in
  let t = { ctx; base; alloc; bugs } in
  if load64 t "p_clht.ml:read magic" (base + off_magic) <> magic_value then
    constructor t ~nbuckets
  else if not bugs.skip_lock_reset then reset_locks t;
  t

let lock t b =
  let rec spin () =
    Jaaru.Ctx.progress t.ctx ~label:"p_clht.ml:lock spin" ();
    if not (Jaaru.Ctx.cas64 t.ctx ~label:"p_clht.ml:lock cas" (b + bk_lock) ~expected:0 ~desired:1)
    then spin ()
  in
  spin ()

let unlock t b = Jaaru.Ctx.store64 t.ctx ~label:"p_clht.ml:unlock" (b + bk_lock) 0

let lookup t k =
  let rec walk b =
    Jaaru.Ctx.progress t.ctx ~label:"p_clht.ml:lookup" ();
    let rec scan i =
      if i >= slots_per_bucket then
        let nx = load64 t "p_clht.ml:lookup next" (b + bk_next) in
        if nx = 0 then None else walk nx
      else if load64 t "p_clht.ml:lookup key" (b + bk_key i) = k then
        Some (load64 t "p_clht.ml:lookup val" (b + bk_val i))
      else scan (i + 1)
    in
    scan 0
  in
  walk (bucket_addr t k)

let insert t k v =
  Jaaru.Ctx.check t.ctx ~label:"p_clht.ml:insert" (k <> 0) "keys must be non-zero";
  let head = bucket_addr t k in
  lock t head;
  let write_slot b i =
    (* Value before key: the key store is the commit. *)
    store64 t "p_clht.ml:write val" (b + bk_val i) v;
    flush t "p_clht.ml:flush val" (b + bk_val i) 8;
    fence t "p_clht.ml:fence val";
    store64 t "p_clht.ml:commit key" (b + bk_key i) k;
    flush t "p_clht.ml:flush key" (b + bk_key i) 8;
    fence t "p_clht.ml:fence key"
  in
  let rec place b =
    Jaaru.Ctx.progress t.ctx ~label:"p_clht.ml:place" ();
    let rec scan i empty =
      if i >= slots_per_bucket then `Chain empty
      else
        let sk = load64 t "p_clht.ml:place key" (b + bk_key i) in
        if sk = k then `Update i
        else if sk = 0 && empty = None then scan (i + 1) (Some i)
        else scan (i + 1) empty
    in
    match scan 0 None with
    | `Update i ->
        store64 t "p_clht.ml:update val" (b + bk_val i) v;
        flush t "p_clht.ml:flush update" (b + bk_val i) 8;
        fence t "p_clht.ml:fence update"
    | `Chain (Some i) -> write_slot b i
    | `Chain None ->
        let nx = load64 t "p_clht.ml:place next" (b + bk_next) in
        if nx <> 0 then place nx
        else begin
          (* Persist a fresh overflow bucket carrying the pair, then link. *)
          let ob = new_bucket t in
          store64 t "p_clht.ml:overflow val" (ob + bk_val 0) v;
          store64 t "p_clht.ml:overflow key" (ob + bk_key 0) k;
          flush t "p_clht.ml:flush overflow" ob bucket_size;
          fence t "p_clht.ml:fence overflow";
          store64 t "p_clht.ml:link overflow" (b + bk_next) ob;
          flush t "p_clht.ml:flush link" (b + bk_next) 8;
          fence t "p_clht.ml:fence link"
        end
  in
  place head;
  unlock t head

let remove t k =
  let head = bucket_addr t k in
  lock t head;
  let rec walk b =
    Jaaru.Ctx.progress t.ctx ~label:"p_clht.ml:remove" ();
    let rec scan i =
      if i >= slots_per_bucket then begin
        let nx = load64 t "p_clht.ml:remove next" (b + bk_next) in
        if nx <> 0 then walk nx
      end
      else if load64 t "p_clht.ml:remove key" (b + bk_key i) = k then begin
        store64 t "p_clht.ml:clear key" (b + bk_key i) 0;
        flush t "p_clht.ml:flush clear" (b + bk_key i) 8;
        fence t "p_clht.ml:fence clear"
      end
      else scan (i + 1)
    in
    scan 0
  in
  walk head;
  unlock t head

let check t =
  Jaaru.Ctx.check t.ctx ~label:"p_clht.ml:check magic"
    (load64 t "p_clht.ml:read magic" (t.base + off_magic) = magic_value)
    "magic word corrupt";
  let ht = ht_ptr t in
  Jaaru.Ctx.check t.ctx ~label:"p_clht.ml:check ht"
    (Region_alloc.contains_object t.alloc ht)
    "hashtable object outside the heap";
  let n = nbuckets t in
  Jaaru.Ctx.check t.ctx ~label:"p_clht.ml:check nbuckets" (n > 0 && n <= 65536)
    "bucket count corrupt";
  let tbl = table t in
  Jaaru.Ctx.check t.ctx ~label:"p_clht.ml:check table"
    (Region_alloc.contains_object t.alloc tbl)
    "bucket array outside the heap";
  for i = 0 to n - 1 do
    let rec walk b =
      Jaaru.Ctx.progress t.ctx ~label:"p_clht.ml:check walk" ();
      let lk = load64 t "p_clht.ml:check lock" (b + bk_lock) in
      Jaaru.Ctx.check t.ctx ~label:"p_clht.ml:check lockword" (lk = 0 || lk = 1)
        "lock word corrupt";
      for s = 0 to slots_per_bucket - 1 do
        let k = load64 t "p_clht.ml:check key" (b + bk_key s) in
        if k <> 0 then
          Jaaru.Ctx.check t.ctx ~label:"p_clht.ml:check routing"
            (hash k mod n = i)
            "occupied slot in the wrong bucket"
      done;
      let nx = load64 t "p_clht.ml:check next" (b + bk_next) in
      if nx <> 0 then begin
        Jaaru.Ctx.check t.ctx ~label:"p_clht.ml:check chain"
          (Region_alloc.contains_object t.alloc nx)
          "overflow pointer outside the heap";
        walk nx
      end
    in
    walk (tbl + (bucket_size * i))
  done
