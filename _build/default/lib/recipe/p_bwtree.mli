(** P-BwTree — a persistent Bw-tree slice (RECIPE benchmark).

    A mapping table indirects every logical node; writers prepend insert
    deltas to a node's chain with a single mapping-slot commit, and long
    chains are consolidated into a fresh base node published the same way.
    Retired chains go onto a persistent garbage-collection list whose head
    pointer and count must be updated crash-consistently.

    Toggles seed the paper's five P-BwTree bugs (Fig. 13 #10–14): the GC
    atomicity violation, missing flushes of the GC metadata pointer and the
    GC metadata, and — together with {!Region_alloc.bugs} — the
    AllocationMeta and BwTree constructor flushes. *)

type bugs = {
  gc_nonatomic : bool;
      (** The GC count commits before the list head: a crash in between
          leaves the metadata inconsistent (Fig. 13 #10). *)
  missing_gc_head_flush : bool;  (** GC list-head store not flushed (#11). *)
  missing_gc_link_flush : bool;  (** retired node's GC link not flushed (#12). *)
  ctor_skip_flush : bool;  (** mapping table / tree metadata not flushed (#14). *)
}

val no_bugs : bugs

type t

val create_or_open : ?bugs:bugs -> ?alloc_bugs:Region_alloc.bugs -> Jaaru.Ctx.t -> t

val insert : t -> int -> int -> unit
(** Keys must be non-zero. Consolidation triggers on chains longer than 4. *)

val lookup : t -> int -> int option

val remove : t -> int -> unit
(** Prepends a delete delta — the Bw-tree's native removal mechanism. The
    key disappears at the next consolidation. *)

val check : t -> unit
(** Recovery verification: mapping slot and chain sane, base node sorted,
    GC list consistent with its count. *)

val gc_pending : t -> int
(** Number of retired chains awaiting GC (reads PM). *)
