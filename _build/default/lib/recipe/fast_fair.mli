(** FAST_FAIR — a failure-atomic shifting B+tree (RECIPE benchmark).

    Nodes hold eight 8-byte slots pointing at immutable key/value entry
    records. Inserts shift slots FAST-style — one atomic 8-byte store at a
    time, flushed as they go — so a crash leaves at worst a duplicated
    neighbour that readers tolerate (FAIR). Splits persist the new sibling,
    publish the separator as the survivor's high key, commit the sibling
    link, and only then update the parent; readers chase sibling links when
    a key exceeds a node's high key, so the tree is consistent even if the
    crash lands before the parent update.

    The three toggles seed the paper's FAST_FAIR bugs (Fig. 13 #4–6):
    missing flushes in the header, entry and tree constructors. *)

type bugs = {
  ctor_skip_header_flush : bool;  (** node header (kind/sibling/high key) *)
  missing_entry_flush : bool;  (** entry record not flushed before its slot commits *)
  ctor_skip_root_flush : bool;  (** tree metadata / root pointer *)
}

val no_bugs : bugs

type t

val create_or_open : ?bugs:bugs -> ?alloc_bugs:Region_alloc.bugs -> Jaaru.Ctx.t -> t

val insert : t -> int -> int -> unit
(** Keys must be non-zero. Duplicates update (a fresh record replaces the
    slot atomically). *)

val lookup : t -> int -> int option

val remove : t -> int -> unit
(** FAIR shift-left deletion from the leaf: transient duplicates during the
    shift are tolerated by readers; the trailing zero store commits. The key
    may survive in inner nodes as a routing separator. *)

val check : t -> unit
(** Recovery verification: header kinds, slot occupancy shape, key order
    with duplicate tolerance, high-key bounds, and the whole leaf chain. *)

val entries : t -> (int * int) list
(** Left-to-right leaf scan with duplicate suppression. *)
