type bugs = {
  gc_nonatomic : bool;
  missing_gc_head_flush : bool;
  missing_gc_link_flush : bool;
  ctor_skip_flush : bool;
}

let no_bugs =
  {
    gc_nonatomic = false;
    missing_gc_head_flush = false;
    missing_gc_link_flush = false;
    ctor_skip_flush = false;
  }

let magic_value = 0xb37e
let base_capacity = 32
let consolidate_after = 4

(* Metadata line at the region base. *)
let off_magic = 0
let off_mapping = 64
let off_gc_head = 128 (* head and count on separate lines: flushing one
   must not persist the other *)
let off_gc_count = 192

(* Uniform node header: type, GC link. *)
let type_base = 1
let type_delta = 2
let type_delete = 3
let nd_type = 0
let nd_gc_next = 8

(* Base node: header, key count, then key/value pairs. *)
let base_nkeys = 16
let base_entry i = 24 + (16 * i)
let base_size = 24 + (16 * base_capacity)

(* Insert delta: header, key, value, chain link. *)
let d_key = 16
let d_val = 24
let d_next = 32
let delta_size = 40

type t = { ctx : Jaaru.Ctx.t; base : Pmem.Addr.t; alloc : Region_alloc.t; bugs : bugs }

let store64 t label addr v = Jaaru.Ctx.store64 t.ctx ~label addr v
let load64 t label addr = Jaaru.Ctx.load64 t.ctx ~label addr
let flush t label addr size = Jaaru.Ctx.clflush t.ctx ~label addr size
let fence t label = Jaaru.Ctx.sfence t.ctx ~label ()

let mapping_slot t = load64 t "p_bwtree.ml:read mapping" (t.base + off_mapping)
let head t = load64 t "p_bwtree.ml:read head" (mapping_slot t)
let node_type t n = load64 t "p_bwtree.ml:type" (n + nd_type)

let new_base t entries =
  let n = Region_alloc.alloc t.alloc ~label:"p_bwtree.ml:alloc base" base_size in
  store64 t "p_bwtree.ml:base type" (n + nd_type) type_base;
  store64 t "p_bwtree.ml:base gc" (n + nd_gc_next) 0;
  store64 t "p_bwtree.ml:base nkeys" (n + base_nkeys) (List.length entries);
  List.iteri
    (fun i (k, v) ->
      store64 t "p_bwtree.ml:base key" (n + base_entry i) k;
      store64 t "p_bwtree.ml:base val" (n + base_entry i + 8) v)
    entries;
  (* Zero the unused tail so recovery never reads allocator poison. *)
  for i = List.length entries to base_capacity - 1 do
    store64 t "p_bwtree.ml:base pad" (n + base_entry i) 0;
    store64 t "p_bwtree.ml:base pad" (n + base_entry i + 8) 0
  done;
  flush t "p_bwtree.ml:flush base" n base_size;
  fence t "p_bwtree.ml:fence base";
  n

let create_or_open ?(bugs = no_bugs) ?alloc_bugs ctx =
  let region = Jaaru.Ctx.region ctx in
  let base = region.Pmem.Region.base in
  let alloc =
    Region_alloc.create_or_open ?bugs:alloc_bugs ctx ~base:(base + 256)
      ~limit:(Pmem.Region.limit region)
  in
  let t = { ctx; base; alloc; bugs } in
  if load64 t "p_bwtree.ml:read magic" (base + off_magic) <> magic_value then begin
    (* A one-slot mapping table pointing at an empty base node. *)
    let map = Region_alloc.alloc t.alloc ~label:"p_bwtree.ml:alloc mapping" 8 in
    let b0 = new_base t [] in
    store64 t "p_bwtree.ml:ctor slot" map b0;
    store64 t "p_bwtree.ml:ctor mapping" (base + off_mapping) map;
    store64 t "p_bwtree.ml:ctor gc head" (base + off_gc_head) 0;
    store64 t "p_bwtree.ml:ctor gc count" (base + off_gc_count) 0;
    if not bugs.ctor_skip_flush then begin
      flush t "p_bwtree.ml:flush ctor slot" map 8;
      flush t "p_bwtree.ml:flush ctor meta" (base + off_mapping) 8;
      flush t "p_bwtree.ml:flush ctor gc" (base + off_gc_head) 8;
      flush t "p_bwtree.ml:flush ctor gc count" (base + off_gc_count) 8;
      fence t "p_bwtree.ml:fence ctor"
    end;
    store64 t "p_bwtree.ml:ctor magic" (base + off_magic) magic_value;
    flush t "p_bwtree.ml:flush magic" (base + off_magic) 8;
    fence t "p_bwtree.ml:fence magic"
  end;
  t

(* --- chain access ---------------------------------------------------------- *)

let fold_chain t f acc =
  let rec walk n acc depth =
    Jaaru.Ctx.progress t.ctx ~label:"p_bwtree.ml:chain" ();
    Jaaru.Ctx.check t.ctx ~label:"p_bwtree.ml:chain depth" (depth < 1024) "delta chain unbounded";
    let ty = node_type t n in
    Jaaru.Ctx.check t.ctx ~label:"p_bwtree.ml:chain type"
      (ty = type_base || ty = type_delta || ty = type_delete)
      "node type corrupt";
    if ty = type_delta then
      let acc = f (`Delta n) acc in
      walk (load64 t "p_bwtree.ml:delta next" (n + d_next)) acc (depth + 1)
    else if ty = type_delete then
      let acc = f (`Delete n) acc in
      walk (load64 t "p_bwtree.ml:delta next" (n + d_next)) acc (depth + 1)
    else f (`Base n) acc
  in
  walk (head t) acc 0

let lookup t k =
  (* The newest chain entry for the key wins; a delete delta hides anything
     older, including the base. *)
  let result =
    fold_chain t
      (fun node acc ->
        match (node, acc) with
        | _, Some _ -> acc
        | `Delta d, None ->
            if load64 t "p_bwtree.ml:lookup dkey" (d + d_key) = k then
              Some (Some (load64 t "p_bwtree.ml:lookup dval" (d + d_val)))
            else None
        | `Delete d, None ->
            if load64 t "p_bwtree.ml:lookup delkey" (d + d_key) = k then Some None else None
        | `Base b, None ->
            let n = load64 t "p_bwtree.ml:lookup nkeys" (b + base_nkeys) in
            let rec scan i =
              if i >= n then None
              else if load64 t "p_bwtree.ml:lookup bkey" (b + base_entry i) = k then
                Some (Some (load64 t "p_bwtree.ml:lookup bval" (b + base_entry i + 8)))
              else scan (i + 1)
            in
            scan 0)
      None
  in
  Option.join result

let chain_length t =
  fold_chain t
    (fun node n -> match node with `Delta _ | `Delete _ -> n + 1 | `Base _ -> n)
    0

(* Retire a replaced chain onto the persistent GC list. The fixed protocol
   persists the retired node's link before the head swings to it, and the
   count only moves after the head is durable. *)
let gc_retire t old_head =
  let gc_head = load64 t "p_bwtree.ml:gc read head" (t.base + off_gc_head) in
  let gc_count = load64 t "p_bwtree.ml:gc read count" (t.base + off_gc_count) in
  if t.bugs.gc_nonatomic then begin
    (* Atomicity violation: count first, flushed, then the head. *)
    store64 t "p_bwtree.ml:gc count early" (t.base + off_gc_count) (gc_count + 1);
    flush t "p_bwtree.ml:gc flush count early" (t.base + off_gc_count) 8;
    fence t "p_bwtree.ml:gc fence count early"
  end;
  store64 t "p_bwtree.ml:gc link" (old_head + nd_gc_next) gc_head;
  if not t.bugs.missing_gc_link_flush then begin
    flush t "p_bwtree.ml:gc flush link" (old_head + nd_gc_next) 8;
    fence t "p_bwtree.ml:gc fence link"
  end;
  store64 t "p_bwtree.ml:gc head" (t.base + off_gc_head) old_head;
  if not t.bugs.missing_gc_head_flush then begin
    flush t "p_bwtree.ml:gc flush head" (t.base + off_gc_head) 8;
    fence t "p_bwtree.ml:gc fence head"
  end;
  if not t.bugs.gc_nonatomic then begin
    store64 t "p_bwtree.ml:gc count" (t.base + off_gc_count) (gc_count + 1);
    flush t "p_bwtree.ml:gc flush count" (t.base + off_gc_count) 8;
    fence t "p_bwtree.ml:gc fence count"
  end

(* Merge the chain into a fresh base and publish it in the mapping slot. *)
let consolidate t =
  let old_head = head t in
  let deltas, base_node =
    fold_chain t
      (fun node (ds, bn) ->
        match node with
        | `Delta d ->
            let k = load64 t "p_bwtree.ml:cons dkey" (d + d_key) in
            let v = load64 t "p_bwtree.ml:cons dval" (d + d_val) in
            ((k, Some v) :: ds, bn)
        | `Delete d ->
            let k = load64 t "p_bwtree.ml:cons delkey" (d + d_key) in
            ((k, None) :: ds, bn)
        | `Base b -> (ds, Some b))
      ([], None)
  in
  let deltas = List.rev deltas (* newest first: first occurrence wins *) in
  let base_entries =
    match base_node with
    | None -> []
    | Some b ->
        let n = load64 t "p_bwtree.ml:cons nkeys" (b + base_nkeys) in
        List.init n (fun i ->
            ( load64 t "p_bwtree.ml:cons bkey" (b + base_entry i),
              Some (load64 t "p_bwtree.ml:cons bval" (b + base_entry i + 8)) ))
  in
  (* First (newest) binding wins; delete-delta bindings drop the key. *)
  let merged =
    List.fold_left
      (fun acc (k, v) -> if List.mem_assoc k acc then acc else (k, v) :: acc)
      [] (deltas @ base_entries)
  in
  let merged =
    List.sort compare (List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) v) merged)
  in
  Jaaru.Ctx.check t.ctx ~label:"p_bwtree.ml:capacity"
    (List.length merged <= base_capacity)
    "base node capacity exceeded";
  let nb = new_base t merged in
  store64 t "p_bwtree.ml:publish base" (mapping_slot t) nb;
  flush t "p_bwtree.ml:flush publish" (mapping_slot t) 8;
  fence t "p_bwtree.ml:fence publish";
  gc_retire t old_head

(* Prepend one fully persisted delta; the mapping-slot store commits it. *)
let prepend_delta t ~ty k v =
  let d = Region_alloc.alloc t.alloc ~label:"p_bwtree.ml:alloc delta" delta_size in
  store64 t "p_bwtree.ml:delta type" (d + nd_type) ty;
  store64 t "p_bwtree.ml:delta gc" (d + nd_gc_next) 0;
  store64 t "p_bwtree.ml:delta key" (d + d_key) k;
  store64 t "p_bwtree.ml:delta val" (d + d_val) v;
  store64 t "p_bwtree.ml:delta next" (d + d_next) (head t);
  flush t "p_bwtree.ml:flush delta" d delta_size;
  fence t "p_bwtree.ml:fence delta";
  store64 t "p_bwtree.ml:prepend" (mapping_slot t) d;
  flush t "p_bwtree.ml:flush prepend" (mapping_slot t) 8;
  fence t "p_bwtree.ml:fence prepend";
  if chain_length t > consolidate_after then consolidate t

let insert t k v =
  Jaaru.Ctx.check t.ctx ~label:"p_bwtree.ml:insert" (k <> 0) "keys must be non-zero";
  prepend_delta t ~ty:type_delta k v

let remove t k =
  Jaaru.Ctx.check t.ctx ~label:"p_bwtree.ml:remove" (k <> 0) "keys must be non-zero";
  prepend_delta t ~ty:type_delete k 0

let gc_pending t = load64 t "p_bwtree.ml:read gc count" (t.base + off_gc_count)

let check t =
  Jaaru.Ctx.check t.ctx ~label:"p_bwtree.ml:check magic"
    (load64 t "p_bwtree.ml:read magic" (t.base + off_magic) = magic_value)
    "magic word corrupt";
  let map = mapping_slot t in
  Jaaru.Ctx.check t.ctx ~label:"p_bwtree.ml:check mapping"
    (Region_alloc.contains_object t.alloc map)
    "mapping table outside the heap";
  (* The chain must be well typed and end in a sorted base node. *)
  ignore
    (fold_chain t
       (fun node () ->
         match node with
         | `Delta d | `Delete d ->
             Jaaru.Ctx.check t.ctx ~label:"p_bwtree.ml:check delta"
               (load64 t "p_bwtree.ml:check dkey" (d + d_key) <> 0)
               "delta with a zero key"
         | `Base b ->
             let n = load64 t "p_bwtree.ml:check nkeys" (b + base_nkeys) in
             Jaaru.Ctx.check t.ctx ~label:"p_bwtree.ml:check nkeys"
               (n >= 0 && n <= base_capacity)
               "base key count corrupt";
             let rec sorted i last =
               if i < n then begin
                 let k = load64 t "p_bwtree.ml:check bkey" (b + base_entry i) in
                 Jaaru.Ctx.check t.ctx ~label:"p_bwtree.ml:check sorted" (k > last)
                   "base keys not strictly sorted";
                 sorted (i + 1) k
               end
             in
             sorted 0 0)
       ());
  (* GC metadata: the list length must match the persisted count. *)
  let count = gc_pending t in
  Jaaru.Ctx.check t.ctx ~label:"p_bwtree.ml:check gc count" (count >= 0 && count <= 1_000_000)
    "gc count corrupt";
  let rec walk n seen =
    if n = 0 then seen
    else begin
      Jaaru.Ctx.progress t.ctx ~label:"p_bwtree.ml:check gc" ();
      Jaaru.Ctx.check t.ctx ~label:"p_bwtree.ml:check gc node"
        (Region_alloc.contains_object t.alloc n)
        "gc list entry outside the heap";
      Jaaru.Ctx.check t.ctx ~label:"p_bwtree.ml:gc" (seen < count + 2)
        "gc list longer than its persisted count";
      walk (load64 t "p_bwtree.ml:check gc next" (n + nd_gc_next)) (seen + 1)
    end
  in
  let seen = walk (load64 t "p_bwtree.ml:check gc head" (t.base + off_gc_head)) 0 in
  (* One retire may have been in flight: the head can be durable one step
     ahead of the count. Anything else is the GC atomicity bug; the valid
     lag is repaired here, as recovery would. *)
  Jaaru.Ctx.check t.ctx ~label:"p_bwtree.ml:gc"
    (seen = count || seen = count + 1)
    "gc list length inconsistent with its persisted count";
  if seen <> count then begin
    store64 t "p_bwtree.ml:gc repair" (t.base + off_gc_count) seen;
    flush t "p_bwtree.ml:gc flush repair" (t.base + off_gc_count) 8;
    fence t "p_bwtree.ml:gc fence repair"
  end
