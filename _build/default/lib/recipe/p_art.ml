type bugs = {
  epoch_volatile_flush : bool;
  ctor_skip_root_flush : bool;
  volatile_lock_recovery : bool;
}

let no_bugs =
  { epoch_volatile_flush = false; ctor_skip_root_flush = false; volatile_lock_recovery = false }

let magic_value = 0xa127
let key_bytes = 4
let node4 = 4
let node16 = 16
let node256 = 256

(* Metadata line at the region base. *)
let off_magic = 0
let off_root = 64 (* separate line from the magic commit *)

(* Inner node: type, lock, count, then key-byte and child arrays. Node256
   drops the key array and indexes children directly by byte. *)
let nd_type = 0
let nd_lock = 8
let nd_count = 16
let nd_keys = 24
let nd_children cap = if cap = node256 then 24 else 24 + (8 * cap)
let node_size cap = if cap = node256 then 24 + (8 * 256) else 24 + (16 * cap)

(* Leaves are tagged with the low pointer bit. *)
let tag_leaf p = p lor 1
let is_leaf p = p land 1 = 1
let untag p = p land lnot 1

type t = {
  ctx : Jaaru.Ctx.t;
  base : Pmem.Addr.t;
  alloc : Region_alloc.t;
  bugs : bugs;
  epoch : (Pmem.Addr.t * int) list ref;  (* volatile: lost at every crash *)
}

let store64 t label addr v = Jaaru.Ctx.store64 t.ctx ~label addr v
let load64 t label addr = Jaaru.Ctx.load64 t.ctx ~label addr
let flush t label addr size = Jaaru.Ctx.clflush t.ctx ~label addr size
let fence t label = Jaaru.Ctx.sfence t.ctx ~label ()

let byte_of k d = (k lsr (8 * (key_bytes - 1 - d))) land 0xff

let node_type t n = load64 t "p_art.ml:type" (n + nd_type)
let node_count t n = load64 t "p_art.ml:count" (n + nd_count)
let key_slot n i = n + nd_keys + (8 * i)
let child_slot t n i = n + nd_children (node_type t n) + (8 * i)
let read_key_byte t n i = load64 t "p_art.ml:key byte" (key_slot n i)
let read_child t n i = load64 t "p_art.ml:child" (child_slot t n i)

(* The slot that routes byte [b], if the node has one. Node4/16 scan their
   key array; Node256 indexes directly. *)
let route_slot t n b =
  let ty = node_type t n in
  if ty = node256 then
    let slot = n + nd_children node256 + (8 * b) in
    if load64 t "p_art.ml:route child" slot = 0 then None else Some slot
  else begin
    let c = node_count t n in
    Jaaru.Ctx.check t.ctx ~label:"p_art.ml:count sanity" (c >= 0 && c <= ty)
      "node count corrupt";
    (* Entries with a zero child are deletion tombstones. *)
    let rec go i =
      if i >= c then None
      else if read_key_byte t n i = b && read_child t n i <> 0 then Some (child_slot t n i)
      else go (i + 1)
    in
    go 0
  end

let leaf_key t p = load64 t "p_art.ml:leaf key" (untag p)
let leaf_value t p = load64 t "p_art.ml:leaf value" (untag p + 8)

(* Persist a freshly initialised object — or, with the epoch bug, defer the
   flush into the volatile list that a crash will drop. *)
let persist_new t label addr size =
  if t.bugs.epoch_volatile_flush then t.epoch := (addr, size) :: !(t.epoch)
  else begin
    flush t label addr size;
    fence t label
  end

let epoch_end t =
  List.iter (fun (addr, size) -> flush t "p_art.ml:epoch flush" addr size) !(t.epoch);
  if !(t.epoch) <> [] then fence t "p_art.ml:epoch fence";
  t.epoch := []

let new_leaf t k v =
  let p = Region_alloc.alloc t.alloc ~label:"p_art.ml:alloc leaf" 16 in
  store64 t "p_art.ml:leaf init key" p k;
  store64 t "p_art.ml:leaf init value" (p + 8) v;
  persist_new t "p_art.ml:flush leaf" p 16;
  tag_leaf p

let new_node t cap =
  let n = Region_alloc.alloc t.alloc ~label:"p_art.ml:alloc node" (node_size cap) in
  store64 t "p_art.ml:init type" (n + nd_type) cap;
  store64 t "p_art.ml:init lock" (n + nd_lock) 0;
  store64 t "p_art.ml:init count" (n + nd_count) 0;
  for i = 0 to cap - 1 do
    store64 t "p_art.ml:init key byte" (key_slot n i) 0;
    store64 t "p_art.ml:init child" (n + nd_children cap + (8 * i)) 0
  done;
  persist_new t "p_art.ml:flush node" n (node_size cap);
  n

let root_slot t = t.base + off_root

let commit_slot t slot v =
  store64 t "p_art.ml:commit slot" slot v;
  flush t "p_art.ml:flush slot" slot 8;
  fence t "p_art.ml:fence slot"

(* Sweep the tree clearing leaked lock words (the fixed recovery); the buggy
   variant trusts a volatile pending-unlock list that no longer exists. *)
let rec sweep_locks t p =
  if p <> 0 && not (is_leaf p) then begin
    Jaaru.Ctx.progress t.ctx ~label:"p_art.ml:lock sweep" ();
    store64 t "p_art.ml:sweep lock" (p + nd_lock) 0;
    flush t "p_art.ml:flush sweep" (p + nd_lock) 8;
    let ty = node_type t p in
    if ty = node256 then
      for b = 0 to 255 do
        sweep_locks t (load64 t "p_art.ml:sweep child256" (p + nd_children node256 + (8 * b)))
      done
    else begin
      let c = node_count t p in
      if c >= 0 && c <= node16 then
        for i = 0 to c - 1 do
          sweep_locks t (read_child t p i)
        done
    end
  end

let create_or_open ?(bugs = no_bugs) ?alloc_bugs ctx =
  let region = Jaaru.Ctx.region ctx in
  let base = region.Pmem.Region.base in
  let alloc =
    Region_alloc.create_or_open ?bugs:alloc_bugs ctx ~base:(base + 128)
      ~limit:(Pmem.Region.limit region)
  in
  let t = { ctx; base; alloc; bugs; epoch = ref [] } in
  if load64 t "p_art.ml:read magic" (base + off_magic) <> magic_value then begin
    let root = new_node t node4 in
    store64 t "p_art.ml:ctor root" (root_slot t) root;
    if not bugs.ctor_skip_root_flush then begin
      flush t "p_art.ml:flush root" (root_slot t) 8;
      fence t "p_art.ml:fence root"
    end;
    store64 t "p_art.ml:ctor magic" (base + off_magic) magic_value;
    flush t "p_art.ml:flush magic" (base + off_magic) 8;
    fence t "p_art.ml:fence magic"
  end
  else if not bugs.volatile_lock_recovery then
    sweep_locks t (load64 t "p_art.ml:read root" (root_slot t));
  t

let lock t n =
  let rec spin () =
    Jaaru.Ctx.progress t.ctx ~label:"p_art.ml:lock spin" ();
    if not (Jaaru.Ctx.cas64 t.ctx ~label:"p_art.ml:lock cas" (n + nd_lock) ~expected:0 ~desired:1)
    then spin ()
  in
  spin ()

let unlock t n = store64 t "p_art.ml:unlock" (n + nd_lock) 0

let lookup t k =
  let rec go p d =
    Jaaru.Ctx.progress t.ctx ~label:"p_art.ml:lookup" ();
    if p = 0 then None
    else if is_leaf p then if leaf_key t p = k then Some (leaf_value t p) else None
    else
      match route_slot t p (byte_of k d) with
      | None -> None
      | Some slot -> go (load64 t "p_art.ml:lookup child" slot) (d + 1)
  in
  go (load64 t "p_art.ml:read root" (root_slot t)) 0

(* Add an entry to an inner node: child (and key byte) are persisted, then
   the count store commits them; in Node256 the child store itself is the
   commit. Caller holds the node lock and guarantees room. *)
let add_entry t n b child =
  if node_type t n = node256 then begin
    let slot = n + nd_children node256 + (8 * b) in
    store64 t "p_art.ml:add256 child" slot child;
    flush t "p_art.ml:flush add256" slot 8;
    fence t "p_art.ml:fence add256";
    store64 t "p_art.ml:count256" (n + nd_count) (node_count t n + 1);
    flush t "p_art.ml:flush count256" (n + nd_count) 8;
    fence t "p_art.ml:fence count256"
  end
  else begin
    let c = node_count t n in
    (* Reuse a deletion tombstone when one exists: the key byte goes down
       first (the tombstone stays invisible), then the child store commits
       the entry atomically. *)
    let rec tombstone i =
      if i >= c then None else if read_child t n i = 0 then Some i else tombstone (i + 1)
    in
    match tombstone 0 with
    | Some i ->
        store64 t "p_art.ml:reuse key byte" (key_slot n i) b;
        flush t "p_art.ml:flush reuse key" (key_slot n i) 8;
        fence t "p_art.ml:fence reuse key";
        store64 t "p_art.ml:reuse child" (child_slot t n i) child;
        flush t "p_art.ml:flush reuse child" (child_slot t n i) 8;
        fence t "p_art.ml:fence reuse child"
    | None ->
        store64 t "p_art.ml:add child" (child_slot t n c) child;
        store64 t "p_art.ml:add key byte" (key_slot n c) b;
        flush t "p_art.ml:flush add" (key_slot n c) 8;
        flush t "p_art.ml:flush add child" (child_slot t n c) 8;
        fence t "p_art.ml:fence add";
        store64 t "p_art.ml:commit count" (n + nd_count) (c + 1);
        flush t "p_art.ml:flush count" (n + nd_count) 8;
        fence t "p_art.ml:fence count"
  end

(* Grow a full node into the next size up: the copy is persisted, then the
   parent slot swap publishes it. The stale node simply leaks. *)
let grow t n slot =
  let from_ty = node_type t n in
  let to_ty = if from_ty = node4 then node16 else node256 in
  let big = new_node t to_ty in
  let c = node_count t n in
  let copied = ref 0 in
  for i = 0 to c - 1 do
    let child = read_child t n i in
    if child <> 0 then begin
      let b = read_key_byte t n i in
      let dst =
        if to_ty = node256 then big + nd_children node256 + (8 * b)
        else big + nd_children to_ty + (8 * !copied)
      in
      if to_ty <> node256 then store64 t "p_art.ml:grow key" (key_slot big !copied) b;
      store64 t "p_art.ml:grow child" dst child;
      incr copied
    end
  done;
  store64 t "p_art.ml:grow count" (big + nd_count) !copied;
  persist_new t "p_art.ml:flush grow" big (node_size to_ty);
  commit_slot t slot big;
  big

(* Build the spine of Node4s distinguishing two leaves that agree on key
   bytes up to depth [d]. *)
let rec build_spine t existing k v d =
  let ek = leaf_key t existing in
  let n = new_node t node4 in
  if byte_of ek d = byte_of k d then begin
    let child = build_spine t existing k v (d + 1) in
    add_entry t n (byte_of k d) child
  end
  else begin
    add_entry t n (byte_of ek d) existing;
    add_entry t n (byte_of k d) (new_leaf t k v)
  end;
  n

let insert t k v =
  Jaaru.Ctx.check t.ctx ~label:"p_art.ml:insert"
    (k >= 1 && k < 1 lsl (8 * key_bytes))
    "key out of range";
  (* [slot] is the 8-byte cell holding the pointer to the current subtree, so
     replacements (spines, grows) are single-store commits into it. *)
  let rec go slot d =
    Jaaru.Ctx.progress t.ctx ~label:"p_art.ml:insert descend" ();
    Jaaru.Ctx.check t.ctx ~label:"p_art.ml:insert depth" (d <= key_bytes) "descent too deep";
    let p = load64 t "p_art.ml:insert read slot" slot in
    if p = 0 then commit_slot t slot (new_leaf t k v)
    else if is_leaf p then begin
      let ck = leaf_key t p in
      if ck = k then begin
        store64 t "p_art.ml:update value" (untag p + 8) v;
        flush t "p_art.ml:flush update" (untag p + 8) 8;
        fence t "p_art.ml:fence update"
      end
      else begin
        let spine = build_spine t p k v d in
        commit_slot t slot spine
      end
    end
    else begin
      lock t p;
      let b = byte_of k d in
      match route_slot t p b with
      | Some child_cell ->
          unlock t p;
          go child_cell (d + 1)
      | None ->
          let ty = node_type t p in
          if ty = node256 || node_count t p < ty then begin
            add_entry t p b (new_leaf t k v);
            unlock t p
          end
          else begin
            let _big = grow t p slot in
            unlock t p;
            go slot d
          end
    end
  in
  go (root_slot t) 0

let remove t k =
  Jaaru.Ctx.check t.ctx ~label:"p_art.ml:remove"
    (k >= 1 && k < 1 lsl (8 * key_bytes))
    "key out of range";
  let rec go p d =
    Jaaru.Ctx.progress t.ctx ~label:"p_art.ml:remove descend" ();
    if p <> 0 && not (is_leaf p) then
      match route_slot t p (byte_of k d) with
      | None -> ()
      | Some slot ->
          let child = load64 t "p_art.ml:remove child" slot in
          if is_leaf child then begin
            if leaf_key t child = k then begin
              (* Zeroing the routing slot is the single atomic commit; in a
                 Node4/16 the key byte stays behind as a tombstone. *)
              store64 t "p_art.ml:remove commit" slot 0;
              flush t "p_art.ml:flush remove" slot 8;
              fence t "p_art.ml:fence remove"
            end
          end
          else go child (d + 1)
  in
  go (load64 t "p_art.ml:read root" (root_slot t)) 0

(* --- verification ---------------------------------------------------------- *)

let rec check_node t p ~prefix ~d =
  Jaaru.Ctx.progress t.ctx ~label:"p_art.ml:check" ();
  Jaaru.Ctx.check t.ctx ~label:"p_art.ml:check depth" (d <= key_bytes) "tree too deep";
  if is_leaf p then begin
    let k = leaf_key t p in
    (* The leaf's key must match every byte of the path that led to it. *)
    List.iteri
      (fun i b ->
        Jaaru.Ctx.check t.ctx ~label:"p_art.ml:check route" (byte_of k i = b)
          "leaf key inconsistent with its path")
      (List.rev prefix)
  end
  else begin
    let ty = node_type t p in
    Jaaru.Ctx.check t.ctx ~label:"p_art.ml:check type"
      (ty = node4 || ty = node16 || ty = node256)
      "node type corrupt";
    let lk = load64 t "p_art.ml:check lock" (p + nd_lock) in
    Jaaru.Ctx.check t.ctx ~label:"p_art.ml:check lock" (lk = 0 || lk = 1) "lock word corrupt";
    if ty = node256 then
      for b = 0 to 255 do
        let child = load64 t "p_art.ml:check child256" (p + nd_children node256 + (8 * b)) in
        if child <> 0 then check_node t child ~prefix:(b :: prefix) ~d:(d + 1)
      done
    else begin
      let c = node_count t p in
      Jaaru.Ctx.check t.ctx ~label:"p_art.ml:check count" (c >= 0 && c <= ty) "count corrupt";
      for i = 0 to c - 1 do
        let b = read_key_byte t p i in
        Jaaru.Ctx.check t.ctx ~label:"p_art.ml:check byte" (b >= 0 && b <= 0xff)
          "key byte corrupt";
        let child = read_child t p i in
        (* A zero child is a deletion tombstone. *)
        if child <> 0 then check_node t child ~prefix:(b :: prefix) ~d:(d + 1)
      done
    end
  end

let check t =
  Jaaru.Ctx.check t.ctx ~label:"p_art.ml:check magic"
    (load64 t "p_art.ml:read magic" (t.base + off_magic) = magic_value)
    "magic word corrupt";
  let root = load64 t "p_art.ml:read root" (root_slot t) in
  Jaaru.Ctx.check t.ctx ~label:"p_art.ml:check root"
    (Region_alloc.contains_object t.alloc (untag root))
    "root outside the heap";
  check_node t root ~prefix:[] ~d:0
