(* The jaaru command-line tool: list the bundled benchmarks, model check one
   of them, or compute the eager (Yat) state count for its workload. *)

open Cmdliner

type entry = {
  id : string;
  benchmark : string;
  description : string;
  expected : string list option;
  lint_roots : string list;
  scenario : Jaaru.Explorer.scenario;
  config : Jaaru.Config.t;
}

let all_entries () =
  let of_pmdk (c : Pmdk.Workloads.case) =
    {
      id = c.id;
      benchmark = c.benchmark;
      description = c.description;
      expected = c.expected_symptom;
      lint_roots = c.lint_roots;
      scenario = c.scenario;
      config = c.config;
    }
  in
  let of_recipe (c : Recipe.Workloads.case) =
    {
      id = c.id;
      benchmark = c.benchmark;
      description = c.description;
      expected = c.expected_symptom;
      lint_roots = c.lint_roots;
      scenario = c.scenario;
      config = c.config;
    }
  in
  List.map of_pmdk (Pmdk.Workloads.fig12_cases ())
  @ List.map of_pmdk (Pmdk.Workloads.fixed_cases ())
  @ List.map of_pmdk (Pmdk.Workloads.checksum_cases ())
  @ List.map of_pmdk (Pmdk.Workloads.skiplist_cases ())
  @ List.map of_recipe (Recipe.Workloads.fig13_cases ())
  @ List.map of_recipe (Recipe.Workloads.fixed_cases ())
  @ List.map of_recipe (Recipe.Workloads.concurrent_cases ())

let find_entry id =
  match List.find_opt (fun e -> e.id = id) (all_entries ()) with
  | Some e -> Ok e
  | None -> Error (`Msg (Printf.sprintf "unknown case %S; try `jaaru list'" id))

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let doc = "List the bundled model-checking cases" in
  let run () =
    Format.printf "%-26s %-16s %-8s %s@." "ID" "BENCHMARK" "SEEDED" "DESCRIPTION";
    List.iter
      (fun e ->
        Format.printf "%-26s %-16s %-8s %s@." e.id e.benchmark
          (match e.expected with Some _ -> "bug" | None -> "clean")
          e.description)
      (all_entries ())
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- check --------------------------------------------------------------- *)

let id_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CASE" ~doc:"Case id (see `jaaru list')")

let max_failures_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-failures" ] ~docv:"N" ~doc:"Maximum number of injected power failures")

let max_steps_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-steps" ] ~docv:"N" ~doc:"Per-execution step budget (loop detection)")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Explore the choice tree with $(docv) parallel OCaml domains. Exhaustive runs report \
           identical results for every value; only wall time changes.")

let exhaustive_arg =
  Arg.(
    value & flag
    & info [ "exhaustive" ]
        ~doc:"Keep exploring after the first bug (bug cases stop early by default)")

let multi_rf_arg =
  Arg.(
    value & flag
    & info [ "show-multi-rf" ]
        ~doc:"Print the loads that could read from more than one store (missing-flush debugging aid)")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the event trace of each reported bug")

let snapshot_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "snapshot" ] ~docv:"on|off"
        ~doc:
          "Failure-point snapshot/resume: replays of a crash subtree restore the captured \
           pre-failure state instead of re-executing the pre-failure program. Outcomes are \
           identical either way; off is a debugging/benchmarking aid.")

let memo_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "memo" ] ~docv:"on|off"
        ~doc:
          "Crash-state memoization: when two failure points leave semantically identical \
           persistent states, recovery is explored once and the cached verdict is replayed for \
           the duplicates. Bug reports and statistics are identical either way; off is a \
           debugging/benchmarking aid. Ignored with stop-at-first-bug.")

let analyze_arg =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "Run the persistency analysis passes alongside exploration and print their findings \
           (missing flush/fence root causes, torn writes, redundant flushes)")

let wall_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "wall-budget" ] ~docv:"SEC"
        ~doc:
          "Stop the run cooperatively after $(docv) seconds of wall clock: workers finish their \
           current replay, the partial report is printed flagged as interrupted, and the \
           unexplored frontier is saved when $(b,--checkpoint) is given.")

let step_deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "step-deadline" ] ~docv:"SEC"
        ~doc:
          "Cancel any single execution that runs longer than $(docv) seconds, recording it as an \
           execution-timeout bug — catches workloads that diverge while issuing operations too \
           slowly for $(b,--max-steps) to notice. The exploration itself continues.")

let mem_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-budget" ] ~docv:"MB"
        ~doc:
          "Soft memory budget in megabytes: when the OCaml heap exceeds it, workers shed their \
           memoization and snapshot caches (correct but slower — the run never aborts).")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Periodically (and at every stop, including completion) save the exploration state to \
           $(docv), atomically; continue it later with $(b,--resume).")

let checkpoint_every_arg =
  Arg.(
    value & opt float 30.
    & info [ "checkpoint-every" ] ~docv:"SEC"
        ~doc:"Seconds between periodic checkpoints (with $(b,--checkpoint); default 30)")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Continue the exploration saved in $(docv). The checkpoint's workload and configuration \
           fingerprint must match this invocation ($(b,--jobs), $(b,--memo), $(b,--snapshot) and \
           the budgets may differ; tree-shaping flags may not). The finished run reports exactly \
           what an uninterrupted run would. Implies checkpointing back to the same file unless \
           $(b,--checkpoint) names another.")

let report_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report-out" ] ~docv:"FILE"
        ~doc:
          "Also write the comparable report (wall-clock and other schedule-dependent counters \
           zeroed) to $(docv) — byte-identical across $(b,--jobs) values and interrupt/resume \
           histories; meant for diffing in CI.")

let apply_overrides config ~max_failures ~max_steps ~exhaustive ~jobs ~snapshot ~memo =
  let config =
    match max_failures with
    | Some n -> { config with Jaaru.Config.max_failures = n }
    | None -> config
  in
  let config =
    match max_steps with Some n -> { config with Jaaru.Config.max_steps = n } | None -> config
  in
  let config = { config with Jaaru.Config.jobs = max 1 jobs; snapshot; memo } in
  if exhaustive then { config with Jaaru.Config.stop_at_first_bug = false } else config

let pp_memo_counters o =
  let s = o.Jaaru.Explorer.stats in
  if s.Jaaru.Stats.memo_hits > 0 || s.Jaaru.Stats.memo_saved > 0 then
    Format.printf "memo: %d hit(s), %d miss(es), %d execution(s) saved@."
      s.Jaaru.Stats.memo_hits s.Jaaru.Stats.memo_misses s.Jaaru.Stats.memo_saved

(* SIGINT/SIGTERM request the explorer's cooperative stop: workers finish
   their current replay, the partial report still prints, and the frontier
   is checkpointed. A second signal during the wind-down is absorbed by the
   same sticky flag. The previous dispositions are restored afterwards so
   batch drivers (lint over many cases) regain default kill behavior. *)
let with_graceful_signals f =
  Jaaru.Explorer.clear_interrupt ();
  let handler = Sys.Signal_handle (fun _ -> Jaaru.Explorer.request_interrupt ()) in
  let old_int = Sys.signal Sys.sigint handler in
  let old_term = Sys.signal Sys.sigterm handler in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigterm old_term)
    f

let write_report path o =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "%a@." Jaaru.Explorer.pp_report o)

let check_run id max_failures max_steps exhaustive jobs snapshot memo show_multi_rf show_trace
    analyze wall_budget step_deadline mem_budget checkpoint checkpoint_every resume report_out =
  match find_entry id with
  | Error e -> Error e
  | Ok entry -> (
      let config =
        apply_overrides entry.config ~max_failures ~max_steps ~exhaustive ~jobs ~snapshot ~memo
      in
      let config = if analyze then { config with Jaaru.Config.analyze = true } else config in
      let config =
        {
          config with
          Jaaru.Config.wall_budget;
          step_deadline;
          mem_budget = Option.map (fun mb -> mb * 1024 * 1024) mem_budget;
          checkpoint_every;
        }
      in
      let checkpoint = match (checkpoint, resume) with Some p, _ -> Some p | None, r -> r in
      Format.printf "checking %s (%s): %s@." entry.id entry.benchmark entry.description;
      Format.printf "config: %a@.@." Jaaru.Config.pp config;
      match
        with_graceful_signals (fun () ->
            let resume = Option.map Jaaru.Checkpoint.load resume in
            Jaaru.Explorer.run ~config ?resume ?checkpoint entry.scenario)
      with
      | exception Jaaru.Checkpoint.Rejected msg -> Error (`Msg msg)
      | o ->
          Format.printf "%a@.@." Jaaru.Explorer.pp_outcome o;
          pp_memo_counters o;
          Option.iter (fun path -> write_report path o) report_out;
          List.iter
            (fun b ->
              if show_trace then Format.printf "%a@.@." Jaaru.Bug.pp b
              else Format.printf "bug: %s@." (Jaaru.Bug.symptom b))
            o.Jaaru.Explorer.bugs;
          if show_multi_rf then begin
            Format.printf "@.loads with multiple read-from candidates:@.";
            List.iter
              (fun (r : Jaaru.Ctx.multi_rf) ->
                Format.printf "  %s @@ 0x%x <- {%s}@." r.load_label r.load_addr
                  (String.concat ", "
                     (List.map (fun (l, v) -> Printf.sprintf "%s=%d" l v) r.candidates)))
              o.Jaaru.Explorer.multi_rf
          end;
          if o.Jaaru.Explorer.stats.Jaaru.Stats.interrupted then begin
            (match checkpoint with
            | Some path ->
                Format.printf "@.run interrupted; continue with: jaaru check %s --resume %s@."
                  entry.id path
            | None ->
                Format.printf
                  "@.run interrupted; progress was discarded (re-run with --checkpoint FILE to \
                   make runs resumable)@.");
            Error (`Msg "run interrupted")
          end
          else begin
            let expected_bug = entry.expected <> None in
            let found = Jaaru.Explorer.found_bug o in
            if expected_bug && not found then Error (`Msg "seeded bug was not found")
            else if (not expected_bug) && found then Error (`Msg "clean case reported a bug")
            else Ok ()
          end)

let check_cmd =
  let doc = "Model check one bundled case" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      term_result
        (const check_run $ id_arg $ max_failures_arg $ max_steps_arg $ exhaustive_arg $ jobs_arg
       $ snapshot_arg $ memo_arg $ multi_rf_arg $ trace_arg $ analyze_arg $ wall_budget_arg
       $ step_deadline_arg $ mem_budget_arg $ checkpoint_arg $ checkpoint_every_arg $ resume_arg
       $ report_out_arg))

(* --- lint ------------------------------------------------------------------ *)

(* Lint runs the pre-failure program once, failure-free, with the analysis
   passes on ([max_executions = 1] keeps exploration to exactly the root
   all-defaults execution, so the report is deterministic for any --jobs and
   never waits on the full state space). Missing-flush bugs are root-caused
   at the guilty store label without ever replaying the crash that would
   expose the symptom. *)
let lint_config config ~jobs =
  {
    config with
    Jaaru.Config.analyze = true;
    stop_at_first_bug = false;
    max_executions = 1;
    jobs = max 1 jobs;
  }

let lint_one ~fail_on ~jobs entry =
  let config = lint_config entry.config ~jobs in
  let o = Jaaru.Explorer.run ~config entry.scenario in
  let findings = o.Jaaru.Explorer.findings in
  Format.printf "@[<v>linting %-26s %d finding(s)" entry.id (List.length findings);
  List.iter (fun f -> Format.printf "@,  %a" Analysis.Report.pp_finding f) findings;
  Format.printf "@]@.";
  let flagged =
    match fail_on with
    | None -> []
    | Some threshold ->
        List.filter
          (fun (f : Analysis.Report.finding) ->
            Analysis.Report.severity_at_least ~threshold f.Analysis.Report.severity)
          findings
  in
  if entry.lint_roots <> [] then begin
    (* A seeded missing-flush case: lint must name one of the guilty store
       labels in a high-severity missing-flush finding. *)
    let root_caused =
      List.exists
        (fun (f : Analysis.Report.finding) ->
          f.Analysis.Report.severity = Analysis.Report.High
          && f.Analysis.Report.pass = "missing-flush"
          && List.exists (fun l -> List.mem l entry.lint_roots) f.Analysis.Report.labels)
        findings
    in
    if root_caused then Ok ()
    else
      Error
        (Printf.sprintf "%s: failed to root-cause seeded bug (expected a store label among: %s)"
           entry.id
           (String.concat ", " entry.lint_roots))
  end
  else if entry.expected = None && flagged <> [] then
    Error
      (Printf.sprintf "%s: clean case has %d finding(s) at or above the fail threshold" entry.id
         (List.length flagged))
  else Ok ()

let ids_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"CASE" ~doc:"Case ids to lint (default: all)")

let fail_on_arg =
  let sev =
    Arg.enum
      [
        ("low", Some Analysis.Report.Low);
        ("medium", Some Analysis.Report.Medium);
        ("high", Some Analysis.Report.High);
        ("none", None);
      ]
  in
  Arg.(
    value
    & opt sev (Some Analysis.Report.High)
    & info [ "fail-on" ] ~docv:"SEVERITY"
        ~doc:
          "Fail clean cases that have findings at or above $(docv) (low, medium, high, or none to \
           never fail on severity)")

let lint_run ids fail_on jobs =
  let entries =
    match ids with
    | [] -> Ok (all_entries ())
    | ids -> (
        match List.find_opt (fun id -> Result.is_error (find_entry id)) ids with
        | Some bad -> Error (`Msg (Printf.sprintf "unknown case %S; try `jaaru list'" bad))
        | None -> Ok (List.map (fun id -> Result.get_ok (find_entry id)) ids))
  in
  match entries with
  | Error e -> Error e
  | Ok entries ->
      let errors =
        List.filter_map
          (fun entry -> match lint_one ~fail_on ~jobs entry with Ok () -> None | Error m -> Some m)
          entries
      in
      if errors = [] then begin
        Format.printf "lint: %d case(s) ok@." (List.length entries);
        Ok ()
      end
      else begin
        List.iter (fun m -> Format.printf "lint error: %s@." m) errors;
        Error (`Msg (Printf.sprintf "%d lint failure(s)" (List.length errors)))
      end

let lint_cmd =
  let doc = "Statically root-cause persistency bugs with the analysis passes (no crash replay)" in
  Cmd.v (Cmd.info "lint" ~doc) Term.(term_result (const lint_run $ ids_arg $ fail_on_arg $ jobs_arg))

(* --- yat ------------------------------------------------------------------ *)

let yat_run id =
  match find_entry id with
  | Error e -> Error e
  | Ok entry ->
      let t = Yat.State_count.analyze ~config:entry.config (fun ctx -> entry.scenario.pre ctx) in
      Format.printf "%s: %a@." entry.id Yat.State_count.pp t;
      Ok ()

let yat_cmd =
  let doc = "Count the post-failure states an eager (Yat-style) checker would explore" in
  Cmd.v (Cmd.info "yat" ~doc) Term.(term_result (const yat_run $ id_arg))

(* --- perf ------------------------------------------------------------------ *)

let bench_arg =
  Arg.(
    value
    & opt string "CCEH"
    & info [ "benchmark" ] ~docv:"NAME"
        ~doc:"One of CCEH, FAST_FAIR, P-ART, P-BwTree, P-CLHT, P-Masstree")

let n_arg = Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Workload size (keys inserted)")

let perf_run benchmark n jobs snapshot memo =
  match Recipe.Workloads.fixed_scenario benchmark n with
  | exception Invalid_argument m -> Error (`Msg m)
  | scn ->
      let config =
        {
          Jaaru.Config.default with
          Jaaru.Config.max_steps = 200_000;
          jobs = max 1 jobs;
          snapshot;
          memo;
        }
      in
      let t0 = Unix.gettimeofday () in
      let o = Jaaru.Explorer.run ~config scn in
      let dt = Unix.gettimeofday () -. t0 in
      Format.printf "%s n=%d: %a@." benchmark n Jaaru.Explorer.pp_outcome o;
      pp_memo_counters o;
      Format.printf "wall time: %.3fs@." dt;
      let yat = Yat.State_count.analyze ~config (fun ctx -> scn.pre ctx) in
      Format.printf "eager baseline would explore %a states@." Yat.State_count.pp_count
        yat.Yat.State_count.log10_total;
      if Jaaru.Explorer.found_bug o then Error (`Msg "fixed benchmark reported a bug") else Ok ()

let perf_cmd =
  let doc = "Exhaustively explore a fixed RECIPE benchmark and report statistics" in
  Cmd.v
    (Cmd.info "perf" ~doc)
    Term.(term_result (const perf_run $ bench_arg $ n_arg $ jobs_arg $ snapshot_arg $ memo_arg))

(* --- fuzz ------------------------------------------------------------------ *)

let seeds_arg =
  Arg.(value & opt int 16 & info [ "seeds" ] ~docv:"N" ~doc:"Number of schedule seeds to fuzz")

let fuzz_run id nseeds jobs =
  match find_entry id with
  | Error e -> Error e
  | Ok entry ->
      let seeds = List.init nseeds succ in
      Format.printf "fuzzing %s over %d schedules...@." entry.id nseeds;
      let config = { entry.config with Jaaru.Config.jobs = max 1 jobs } in
      let r = Jaaru.Fuzz.run ~config ~seeds entry.scenario in
      Format.printf "%a@." Jaaru.Fuzz.pp r;
      let expected_bug = entry.expected <> None in
      if expected_bug && not (Jaaru.Fuzz.found_bug r) then
        Error (`Msg "seeded bug was not found on any schedule")
      else if (not expected_bug) && Jaaru.Fuzz.found_bug r then
        Error (`Msg "clean case reported a bug")
      else Ok ()

let fuzz_cmd =
  let doc = "Fuzz a bundled case across seeded thread schedules (concurrency bugs)" in
  Cmd.v (Cmd.info "fuzz" ~doc) Term.(term_result (const fuzz_run $ id_arg $ seeds_arg $ jobs_arg))

(* --- pbt ------------------------------------------------------------------ *)

(* Stateful property-based testing: generated command sequences, each
   explored across every crash point, checked against an in-memory fake.
   Stdout is deterministic for a fixed seed — reports never mention wall
   clock, and each exploration's outcome is jobs/layer-invariant by the
   explorer's contract — so CI can diff two runs byte-for-byte. Rates go to
   stderr. *)

let structure_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "structure" ] ~docv:"ID"
        ~doc:
          "Test one structure (see `jaaru pbt --list'; seeded-bug variants like \
           $(b,pmdk-hashmap-atomic!missing-entry-flush) are accepted here and only here). \
           Default: every clean structure.")

let pbt_list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List the testable structures and exit")

let count_arg =
  Arg.(
    value & opt int 25
    & info [ "count" ] ~docv:"N" ~doc:"Command sequences to generate per structure")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Generation seed")

let max_cmds_arg =
  Arg.(
    value & opt int 6
    & info [ "max-cmds" ] ~docv:"N" ~doc:"Maximum commands per generated sequence")

let time_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "time-budget" ] ~docv:"SEC"
        ~doc:
          "Nightly mode: keep output deterministic only in content shape, not coverage — stop \
           cooperatively after $(docv) seconds of wall clock across all structures, reporting \
           each interrupted structure with the sequences it completed.")

let pbt_run structure list count seed max_cmds time_budget jobs snapshot memo =
  if list then begin
    Format.printf "%-42s %-8s %s@." "ID" "FAMILY" "ORACLE";
    List.iter
      (fun a ->
        let module S = (val a : Pbt.Structures.STRUCTURE) in
        Format.printf "%-42s %-8s %s@." S.id S.family
          (match S.discipline with
          | Pbt.Oracle.Any_subset -> "any persist-consistent subset"
          | Pbt.Oracle.Prefix_only -> "prefix of issued commands"))
      (Pbt.Structures.all () @ Pbt.Structures.seeded ());
    Ok ()
  end
  else
    let adapters =
      match structure with
      | None -> Ok (Pbt.Structures.all ())
      | Some id -> (
          match Pbt.Structures.find id with
          | Some a -> Ok [ a ]
          | None ->
              Error (`Msg (Printf.sprintf "unknown structure %S; try `jaaru pbt --list'" id)))
    in
    match adapters with
    | Error e -> Error e
    | Ok adapters ->
        let deadline = Option.map (fun b -> Unix.gettimeofday () +. b) time_budget in
        let config = { Pbt.Runner.config with Jaaru.Config.jobs = max 1 jobs; snapshot; memo } in
        let reports =
          List.map
            (fun a -> Pbt.Driver.run_structure ~config ?deadline ~seed ~count ~max_cmds a)
            adapters
        in
        List.iter
          (fun r ->
            Format.printf "%a@." Pbt.Driver.pp_report r;
            if r.Pbt.Driver.wall > 0. then
              Format.eprintf "%s: %.1f sequences/s, %.0f executions/s (%.2fs)@."
                r.Pbt.Driver.structure
                (float_of_int r.Pbt.Driver.sequences /. r.Pbt.Driver.wall)
                (float_of_int r.Pbt.Driver.executions /. r.Pbt.Driver.wall)
                r.Pbt.Driver.wall)
          reports;
        let failed = List.filter Pbt.Driver.found_bug reports in
        let interrupted = List.exists (fun r -> r.Pbt.Driver.interrupted) reports in
        if failed <> [] then
          Error
            (`Msg
              (Printf.sprintf "%d structure(s) failed: %s" (List.length failed)
                 (String.concat ", " (List.map (fun r -> r.Pbt.Driver.structure) failed))))
        else begin
          if interrupted then
            Format.printf "time budget exhausted; coverage above is partial@.";
          Ok ()
        end

let pbt_cmd =
  let doc = "Property-based test the bundled structures against in-memory fakes across crashes" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates random command sequences per structure, runs each under the model checker \
         across every injected crash point, and requires the recovered observable state to match \
         an in-memory fake applied to some persist-consistent subset of the issued commands. \
         Failing sequences are shrunk to a minimal witness with a replayable repro line.";
    ]
  in
  Cmd.v
    (Cmd.info "pbt" ~doc ~man)
    Term.(
      term_result
        (const pbt_run $ structure_arg $ pbt_list_arg $ count_arg $ seed_arg $ max_cmds_arg
       $ time_budget_arg $ jobs_arg $ snapshot_arg $ memo_arg))

(* --- main ------------------------------------------------------------------ *)

let () =
  let doc = "Jaaru: a model checker for persistent-memory programs" in
  let info = Cmd.info "jaaru" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ list_cmd; check_cmd; lint_cmd; yat_cmd; perf_cmd; fuzz_cmd; pbt_cmd ]))
