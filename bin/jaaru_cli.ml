(* The jaaru command-line tool: list the bundled benchmarks, model check one
   of them, or compute the eager (Yat) state count for its workload. *)

open Cmdliner

type entry = {
  id : string;
  benchmark : string;
  description : string;
  expected : string list option;
  scenario : Jaaru.Explorer.scenario;
  config : Jaaru.Config.t;
}

let all_entries () =
  let of_pmdk (c : Pmdk.Workloads.case) =
    {
      id = c.id;
      benchmark = c.benchmark;
      description = c.description;
      expected = c.expected_symptom;
      scenario = c.scenario;
      config = c.config;
    }
  in
  let of_recipe (c : Recipe.Workloads.case) =
    {
      id = c.id;
      benchmark = c.benchmark;
      description = c.description;
      expected = c.expected_symptom;
      scenario = c.scenario;
      config = c.config;
    }
  in
  List.map of_pmdk (Pmdk.Workloads.fig12_cases ())
  @ List.map of_pmdk (Pmdk.Workloads.fixed_cases ())
  @ List.map of_pmdk (Pmdk.Workloads.checksum_cases ())
  @ List.map of_pmdk (Pmdk.Workloads.skiplist_cases ())
  @ List.map of_recipe (Recipe.Workloads.fig13_cases ())
  @ List.map of_recipe (Recipe.Workloads.fixed_cases ())
  @ List.map of_recipe (Recipe.Workloads.concurrent_cases ())

let find_entry id =
  match List.find_opt (fun e -> e.id = id) (all_entries ()) with
  | Some e -> Ok e
  | None -> Error (`Msg (Printf.sprintf "unknown case %S; try `jaaru list'" id))

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let doc = "List the bundled model-checking cases" in
  let run () =
    Format.printf "%-26s %-16s %-8s %s@." "ID" "BENCHMARK" "SEEDED" "DESCRIPTION";
    List.iter
      (fun e ->
        Format.printf "%-26s %-16s %-8s %s@." e.id e.benchmark
          (match e.expected with Some _ -> "bug" | None -> "clean")
          e.description)
      (all_entries ())
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- check --------------------------------------------------------------- *)

let id_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CASE" ~doc:"Case id (see `jaaru list')")

let max_failures_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-failures" ] ~docv:"N" ~doc:"Maximum number of injected power failures")

let max_steps_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-steps" ] ~docv:"N" ~doc:"Per-execution step budget (loop detection)")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Explore the choice tree with $(docv) parallel OCaml domains. Exhaustive runs report \
           identical results for every value; only wall time changes.")

let exhaustive_arg =
  Arg.(
    value & flag
    & info [ "exhaustive" ]
        ~doc:"Keep exploring after the first bug (bug cases stop early by default)")

let multi_rf_arg =
  Arg.(
    value & flag
    & info [ "show-multi-rf" ]
        ~doc:"Print the loads that could read from more than one store (missing-flush debugging aid)")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the event trace of each reported bug")

let apply_overrides config ~max_failures ~max_steps ~exhaustive ~jobs =
  let config =
    match max_failures with
    | Some n -> { config with Jaaru.Config.max_failures = n }
    | None -> config
  in
  let config =
    match max_steps with Some n -> { config with Jaaru.Config.max_steps = n } | None -> config
  in
  let config = { config with Jaaru.Config.jobs = max 1 jobs } in
  if exhaustive then { config with Jaaru.Config.stop_at_first_bug = false } else config

let check_run id max_failures max_steps exhaustive jobs show_multi_rf show_trace =
  match find_entry id with
  | Error e -> Error e
  | Ok entry ->
      let config = apply_overrides entry.config ~max_failures ~max_steps ~exhaustive ~jobs in
      Format.printf "checking %s (%s): %s@." entry.id entry.benchmark entry.description;
      Format.printf "config: %a@.@." Jaaru.Config.pp config;
      let o = Jaaru.Explorer.run ~config entry.scenario in
      Format.printf "%a@.@." Jaaru.Explorer.pp_outcome o;
      List.iter
        (fun b ->
          if show_trace then Format.printf "%a@.@." Jaaru.Bug.pp b
          else Format.printf "bug: %s@." (Jaaru.Bug.symptom b))
        o.Jaaru.Explorer.bugs;
      if show_multi_rf then begin
        Format.printf "@.loads with multiple read-from candidates:@.";
        List.iter
          (fun (r : Jaaru.Ctx.multi_rf) ->
            Format.printf "  %s @@ 0x%x <- {%s}@." r.load_label r.load_addr
              (String.concat ", "
                 (List.map (fun (l, v) -> Printf.sprintf "%s=%d" l v) r.candidates)))
          o.Jaaru.Explorer.multi_rf
      end;
      let expected_bug = entry.expected <> None in
      let found = Jaaru.Explorer.found_bug o in
      if expected_bug && not found then Error (`Msg "seeded bug was not found")
      else if (not expected_bug) && found then Error (`Msg "clean case reported a bug")
      else Ok ()

let check_cmd =
  let doc = "Model check one bundled case" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      term_result
        (const check_run $ id_arg $ max_failures_arg $ max_steps_arg $ exhaustive_arg $ jobs_arg
       $ multi_rf_arg $ trace_arg))

(* --- yat ------------------------------------------------------------------ *)

let yat_run id =
  match find_entry id with
  | Error e -> Error e
  | Ok entry ->
      let t = Yat.State_count.analyze ~config:entry.config (fun ctx -> entry.scenario.pre ctx) in
      Format.printf "%s: %a@." entry.id Yat.State_count.pp t;
      Ok ()

let yat_cmd =
  let doc = "Count the post-failure states an eager (Yat-style) checker would explore" in
  Cmd.v (Cmd.info "yat" ~doc) Term.(term_result (const yat_run $ id_arg))

(* --- perf ------------------------------------------------------------------ *)

let bench_arg =
  Arg.(
    value
    & opt string "CCEH"
    & info [ "benchmark" ] ~docv:"NAME"
        ~doc:"One of CCEH, FAST_FAIR, P-ART, P-BwTree, P-CLHT, P-Masstree")

let n_arg = Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Workload size (keys inserted)")

let perf_run benchmark n jobs =
  match Recipe.Workloads.fixed_scenario benchmark n with
  | exception Invalid_argument m -> Error (`Msg m)
  | scn ->
      let config =
        { Jaaru.Config.default with Jaaru.Config.max_steps = 200_000; jobs = max 1 jobs }
      in
      let t0 = Unix.gettimeofday () in
      let o = Jaaru.Explorer.run ~config scn in
      let dt = Unix.gettimeofday () -. t0 in
      Format.printf "%s n=%d: %a@." benchmark n Jaaru.Explorer.pp_outcome o;
      Format.printf "wall time: %.3fs@." dt;
      let yat = Yat.State_count.analyze ~config (fun ctx -> scn.pre ctx) in
      Format.printf "eager baseline would explore %a states@." Yat.State_count.pp_count
        yat.Yat.State_count.log10_total;
      if Jaaru.Explorer.found_bug o then Error (`Msg "fixed benchmark reported a bug") else Ok ()

let perf_cmd =
  let doc = "Exhaustively explore a fixed RECIPE benchmark and report statistics" in
  Cmd.v (Cmd.info "perf" ~doc) Term.(term_result (const perf_run $ bench_arg $ n_arg $ jobs_arg))

(* --- fuzz ------------------------------------------------------------------ *)

let seeds_arg =
  Arg.(value & opt int 16 & info [ "seeds" ] ~docv:"N" ~doc:"Number of schedule seeds to fuzz")

let fuzz_run id nseeds jobs =
  match find_entry id with
  | Error e -> Error e
  | Ok entry ->
      let seeds = List.init nseeds succ in
      Format.printf "fuzzing %s over %d schedules...@." entry.id nseeds;
      let config = { entry.config with Jaaru.Config.jobs = max 1 jobs } in
      let r = Jaaru.Fuzz.run ~config ~seeds entry.scenario in
      Format.printf "%a@." Jaaru.Fuzz.pp r;
      let expected_bug = entry.expected <> None in
      if expected_bug && not (Jaaru.Fuzz.found_bug r) then
        Error (`Msg "seeded bug was not found on any schedule")
      else if (not expected_bug) && Jaaru.Fuzz.found_bug r then
        Error (`Msg "clean case reported a bug")
      else Ok ()

let fuzz_cmd =
  let doc = "Fuzz a bundled case across seeded thread schedules (concurrency bugs)" in
  Cmd.v (Cmd.info "fuzz" ~doc) Term.(term_result (const fuzz_run $ id_arg $ seeds_arg $ jobs_arg))

(* --- main ------------------------------------------------------------------ *)

let () =
  let doc = "Jaaru: a model checker for persistent-memory programs" in
  let info = Cmd.info "jaaru" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; check_cmd; yat_cmd; perf_cmd; fuzz_cmd ]))
