(* The jaaru command-line tool: list the bundled benchmarks, model check one
   of them, or compute the eager (Yat) state count for its workload. *)

open Cmdliner

type entry = {
  id : string;
  benchmark : string;
  description : string;
  expected : string list option;
  lint_roots : string list;
  scenario : Jaaru.Explorer.scenario;
  config : Jaaru.Config.t;
}

let all_entries () =
  let of_pmdk (c : Pmdk.Workloads.case) =
    {
      id = c.id;
      benchmark = c.benchmark;
      description = c.description;
      expected = c.expected_symptom;
      lint_roots = c.lint_roots;
      scenario = c.scenario;
      config = c.config;
    }
  in
  let of_recipe (c : Recipe.Workloads.case) =
    {
      id = c.id;
      benchmark = c.benchmark;
      description = c.description;
      expected = c.expected_symptom;
      lint_roots = c.lint_roots;
      scenario = c.scenario;
      config = c.config;
    }
  in
  List.map of_pmdk (Pmdk.Workloads.fig12_cases ())
  @ List.map of_pmdk (Pmdk.Workloads.fixed_cases ())
  @ List.map of_pmdk (Pmdk.Workloads.checksum_cases ())
  @ List.map of_pmdk (Pmdk.Workloads.skiplist_cases ())
  @ List.map of_recipe (Recipe.Workloads.fig13_cases ())
  @ List.map of_recipe (Recipe.Workloads.fixed_cases ())
  @ List.map of_recipe (Recipe.Workloads.concurrent_cases ())

let find_entry id =
  match List.find_opt (fun e -> e.id = id) (all_entries ()) with
  | Some e -> Ok e
  | None -> Error (`Msg (Printf.sprintf "unknown case %S; try `jaaru list'" id))

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let doc = "List the bundled model-checking cases" in
  let run () =
    Format.printf "%-26s %-16s %-8s %s@." "ID" "BENCHMARK" "SEEDED" "DESCRIPTION";
    List.iter
      (fun e ->
        Format.printf "%-26s %-16s %-8s %s@." e.id e.benchmark
          (match e.expected with Some _ -> "bug" | None -> "clean")
          e.description)
      (all_entries ())
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- check --------------------------------------------------------------- *)

let id_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CASE" ~doc:"Case id (see `jaaru list')")

let max_failures_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-failures" ] ~docv:"N" ~doc:"Maximum number of injected power failures")

let max_steps_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-steps" ] ~docv:"N" ~doc:"Per-execution step budget (loop detection)")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Explore the choice tree with $(docv) parallel OCaml domains. Exhaustive runs report \
           identical results for every value; only wall time changes.")

let exhaustive_arg =
  Arg.(
    value & flag
    & info [ "exhaustive" ]
        ~doc:"Keep exploring after the first bug (bug cases stop early by default)")

let multi_rf_arg =
  Arg.(
    value & flag
    & info [ "show-multi-rf" ]
        ~doc:"Print the loads that could read from more than one store (missing-flush debugging aid)")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the event trace of each reported bug")

let snapshot_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "snapshot" ] ~docv:"on|off"
        ~doc:
          "Failure-point snapshot/resume: replays of a crash subtree restore the captured \
           pre-failure state instead of re-executing the pre-failure program. Outcomes are \
           identical either way; off is a debugging/benchmarking aid.")

let memo_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "memo" ] ~docv:"on|off"
        ~doc:
          "Crash-state memoization: when two failure points leave semantically identical \
           persistent states, recovery is explored once and the cached verdict is replayed for \
           the duplicates. Bug reports and statistics are identical either way; off is a \
           debugging/benchmarking aid. Ignored with stop-at-first-bug.")

let analyze_arg =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "Run the persistency analysis passes alongside exploration and print their findings \
           (missing flush/fence root causes, torn writes, redundant flushes)")

let wall_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "wall-budget" ] ~docv:"SEC"
        ~doc:
          "Stop the run cooperatively after $(docv) seconds of wall clock: workers finish their \
           current replay, the partial report is printed flagged as interrupted, and the \
           unexplored frontier is saved when $(b,--checkpoint) is given.")

let step_deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "step-deadline" ] ~docv:"SEC"
        ~doc:
          "Cancel any single execution that runs longer than $(docv) seconds, recording it as an \
           execution-timeout bug — catches workloads that diverge while issuing operations too \
           slowly for $(b,--max-steps) to notice. The exploration itself continues.")

let mem_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-budget" ] ~docv:"MB"
        ~doc:
          "Soft memory budget in megabytes: when the OCaml heap exceeds it, workers shed their \
           memoization and snapshot caches (correct but slower — the run never aborts).")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Periodically (and at every stop, including completion) save the exploration state to \
           $(docv), atomically; continue it later with $(b,--resume).")

let checkpoint_every_arg =
  Arg.(
    value & opt float 30.
    & info [ "checkpoint-every" ] ~docv:"SEC"
        ~doc:"Seconds between periodic checkpoints (with $(b,--checkpoint); default 30)")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Continue the exploration saved in $(docv). The checkpoint's workload and configuration \
           fingerprint must match this invocation ($(b,--jobs), $(b,--memo), $(b,--snapshot) and \
           the budgets may differ; tree-shaping flags may not). The finished run reports exactly \
           what an uninterrupted run would. Implies checkpointing back to the same file unless \
           $(b,--checkpoint) names another.")

let report_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report-out" ] ~docv:"FILE"
        ~doc:
          "Also write the comparable report (wall-clock and other schedule-dependent counters \
           zeroed) to $(docv) — byte-identical across $(b,--jobs) values and interrupt/resume \
           histories; meant for diffing in CI.")

let apply_overrides config ~max_failures ~max_steps ~exhaustive ~jobs ~snapshot ~memo =
  let config =
    match max_failures with
    | Some n -> { config with Jaaru.Config.max_failures = n }
    | None -> config
  in
  let config =
    match max_steps with Some n -> { config with Jaaru.Config.max_steps = n } | None -> config
  in
  let config = { config with Jaaru.Config.jobs = max 1 jobs; snapshot; memo } in
  if exhaustive then { config with Jaaru.Config.stop_at_first_bug = false } else config

let pp_memo_counters o =
  let s = o.Jaaru.Explorer.stats in
  if s.Jaaru.Stats.memo_hits > 0 || s.Jaaru.Stats.memo_saved > 0 then
    Format.printf "memo: %d hit(s), %d miss(es), %d execution(s) saved@."
      s.Jaaru.Stats.memo_hits s.Jaaru.Stats.memo_misses s.Jaaru.Stats.memo_saved

(* SIGINT/SIGTERM request the explorer's cooperative stop: workers finish
   their current replay, the partial report still prints, and the frontier
   is checkpointed. A second signal escalates — the user asked twice, so the
   wind-down (grace periods, straggler collection) is abandoned and the
   process exits immediately with the conventional interrupt status. The
   previous dispositions are restored afterwards so batch drivers (lint over
   many cases) regain default kill behavior. *)
let with_graceful_signals f =
  Jaaru.Explorer.clear_interrupt ();
  let handler =
    Sys.Signal_handle
      (fun _ ->
        if Jaaru.Explorer.interrupts_requested () > 0 then begin
          prerr_endline "second interrupt: exiting immediately";
          exit 130
        end;
        Jaaru.Explorer.request_interrupt ())
  in
  let old_int = Sys.signal Sys.sigint handler in
  let old_term = Sys.signal Sys.sigterm handler in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigterm old_term)
    f

let write_report path o =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "%a@." Jaaru.Explorer.pp_report o)

let check_run id max_failures max_steps exhaustive jobs snapshot memo show_multi_rf show_trace
    analyze wall_budget step_deadline mem_budget checkpoint checkpoint_every resume report_out =
  match find_entry id with
  | Error e -> Error e
  | Ok entry -> (
      let config =
        apply_overrides entry.config ~max_failures ~max_steps ~exhaustive ~jobs ~snapshot ~memo
      in
      let config = if analyze then { config with Jaaru.Config.analyze = true } else config in
      let config =
        {
          config with
          Jaaru.Config.wall_budget;
          step_deadline;
          mem_budget = Option.map (fun mb -> mb * 1024 * 1024) mem_budget;
          checkpoint_every;
        }
      in
      let checkpoint = match (checkpoint, resume) with Some p, _ -> Some p | None, r -> r in
      Format.printf "checking %s (%s): %s@." entry.id entry.benchmark entry.description;
      Format.printf "config: %a@.@." Jaaru.Config.pp config;
      match
        with_graceful_signals (fun () ->
            let resume = Option.map Jaaru.Checkpoint.load resume in
            Jaaru.Explorer.run ~config ?resume ?checkpoint entry.scenario)
      with
      | exception Jaaru.Checkpoint.Rejected msg -> Error (`Msg msg)
      | o ->
          Format.printf "%a@.@." Jaaru.Explorer.pp_outcome o;
          pp_memo_counters o;
          Option.iter (fun path -> write_report path o) report_out;
          List.iter
            (fun b ->
              if show_trace then Format.printf "%a@.@." Jaaru.Bug.pp b
              else Format.printf "bug: %s@." (Jaaru.Bug.symptom b))
            o.Jaaru.Explorer.bugs;
          if show_multi_rf then begin
            Format.printf "@.loads with multiple read-from candidates:@.";
            List.iter
              (fun (r : Jaaru.Ctx.multi_rf) ->
                Format.printf "  %s @@ 0x%x <- {%s}@." r.load_label r.load_addr
                  (String.concat ", "
                     (List.map (fun (l, v) -> Printf.sprintf "%s=%d" l v) r.candidates)))
              o.Jaaru.Explorer.multi_rf
          end;
          if o.Jaaru.Explorer.stats.Jaaru.Stats.interrupted then begin
            (match checkpoint with
            | Some path ->
                Format.printf "@.run interrupted; continue with: jaaru check %s --resume %s@."
                  entry.id path
            | None ->
                Format.printf
                  "@.run interrupted; progress was discarded (re-run with --checkpoint FILE to \
                   make runs resumable)@.");
            Error (`Msg "run interrupted")
          end
          else begin
            let expected_bug = entry.expected <> None in
            let found = Jaaru.Explorer.found_bug o in
            if expected_bug && not found then Error (`Msg "seeded bug was not found")
            else if (not expected_bug) && found then Error (`Msg "clean case reported a bug")
            else Ok ()
          end)

let check_cmd =
  let doc = "Model check one bundled case" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      term_result
        (const check_run $ id_arg $ max_failures_arg $ max_steps_arg $ exhaustive_arg $ jobs_arg
       $ snapshot_arg $ memo_arg $ multi_rf_arg $ trace_arg $ analyze_arg $ wall_budget_arg
       $ step_deadline_arg $ mem_budget_arg $ checkpoint_arg $ checkpoint_every_arg $ resume_arg
       $ report_out_arg))

(* --- lint ------------------------------------------------------------------ *)

(* Lint runs the pre-failure program once, failure-free, with the analysis
   passes on ([max_executions = 1] keeps exploration to exactly the root
   all-defaults execution, so the report is deterministic for any --jobs and
   never waits on the full state space). Missing-flush bugs are root-caused
   at the guilty store label without ever replaying the crash that would
   expose the symptom. *)
let lint_config config ~jobs =
  {
    config with
    Jaaru.Config.analyze = true;
    stop_at_first_bug = false;
    max_executions = 1;
    jobs = max 1 jobs;
  }

let lint_one ~fail_on ~jobs entry =
  let config = lint_config entry.config ~jobs in
  let o = Jaaru.Explorer.run ~config entry.scenario in
  let findings = o.Jaaru.Explorer.findings in
  Format.printf "@[<v>linting %-26s %d finding(s)" entry.id (List.length findings);
  List.iter (fun f -> Format.printf "@,  %a" Analysis.Report.pp_finding f) findings;
  Format.printf "@]@.";
  let flagged =
    match fail_on with
    | None -> []
    | Some threshold ->
        List.filter
          (fun (f : Analysis.Report.finding) ->
            Analysis.Report.severity_at_least ~threshold f.Analysis.Report.severity)
          findings
  in
  if entry.lint_roots <> [] then begin
    (* A seeded missing-flush case: lint must name one of the guilty store
       labels in a high-severity missing-flush finding. *)
    let root_caused =
      List.exists
        (fun (f : Analysis.Report.finding) ->
          f.Analysis.Report.severity = Analysis.Report.High
          && f.Analysis.Report.pass = "missing-flush"
          && List.exists (fun l -> List.mem l entry.lint_roots) f.Analysis.Report.labels)
        findings
    in
    if root_caused then Ok ()
    else
      Error
        (Printf.sprintf "%s: failed to root-cause seeded bug (expected a store label among: %s)"
           entry.id
           (String.concat ", " entry.lint_roots))
  end
  else if entry.expected = None && flagged <> [] then
    Error
      (Printf.sprintf "%s: clean case has %d finding(s) at or above the fail threshold" entry.id
         (List.length flagged))
  else Ok ()

let ids_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"CASE" ~doc:"Case ids to lint (default: all)")

let fail_on_arg =
  let sev =
    Arg.enum
      [
        ("low", Some Analysis.Report.Low);
        ("medium", Some Analysis.Report.Medium);
        ("high", Some Analysis.Report.High);
        ("none", None);
      ]
  in
  Arg.(
    value
    & opt sev (Some Analysis.Report.High)
    & info [ "fail-on" ] ~docv:"SEVERITY"
        ~doc:
          "Fail clean cases that have findings at or above $(docv) (low, medium, high, or none to \
           never fail on severity)")

let lint_run ids fail_on jobs =
  let entries =
    match ids with
    | [] -> Ok (all_entries ())
    | ids -> (
        match List.find_opt (fun id -> Result.is_error (find_entry id)) ids with
        | Some bad -> Error (`Msg (Printf.sprintf "unknown case %S; try `jaaru list'" bad))
        | None -> Ok (List.map (fun id -> Result.get_ok (find_entry id)) ids))
  in
  match entries with
  | Error e -> Error e
  | Ok entries ->
      let errors =
        List.filter_map
          (fun entry -> match lint_one ~fail_on ~jobs entry with Ok () -> None | Error m -> Some m)
          entries
      in
      if errors = [] then begin
        Format.printf "lint: %d case(s) ok@." (List.length entries);
        Ok ()
      end
      else begin
        List.iter (fun m -> Format.printf "lint error: %s@." m) errors;
        Error (`Msg (Printf.sprintf "%d lint failure(s)" (List.length errors)))
      end

let lint_cmd =
  let doc = "Statically root-cause persistency bugs with the analysis passes (no crash replay)" in
  Cmd.v (Cmd.info "lint" ~doc) Term.(term_result (const lint_run $ ids_arg $ fail_on_arg $ jobs_arg))

(* --- yat ------------------------------------------------------------------ *)

let yat_run id =
  match find_entry id with
  | Error e -> Error e
  | Ok entry ->
      let t = Yat.State_count.analyze ~config:entry.config (fun ctx -> entry.scenario.pre ctx) in
      Format.printf "%s: %a@." entry.id Yat.State_count.pp t;
      Ok ()

let yat_cmd =
  let doc = "Count the post-failure states an eager (Yat-style) checker would explore" in
  Cmd.v (Cmd.info "yat" ~doc) Term.(term_result (const yat_run $ id_arg))

(* --- perf ------------------------------------------------------------------ *)

let bench_arg =
  Arg.(
    value
    & opt string "CCEH"
    & info [ "benchmark" ] ~docv:"NAME"
        ~doc:"One of CCEH, FAST_FAIR, P-ART, P-BwTree, P-CLHT, P-Masstree")

let n_arg = Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Workload size (keys inserted)")

let perf_run benchmark n jobs snapshot memo =
  match Recipe.Workloads.fixed_scenario benchmark n with
  | exception Invalid_argument m -> Error (`Msg m)
  | scn ->
      let config =
        {
          Jaaru.Config.default with
          Jaaru.Config.max_steps = 200_000;
          jobs = max 1 jobs;
          snapshot;
          memo;
        }
      in
      let t0 = Unix.gettimeofday () in
      let o = Jaaru.Explorer.run ~config scn in
      let dt = Unix.gettimeofday () -. t0 in
      Format.printf "%s n=%d: %a@." benchmark n Jaaru.Explorer.pp_outcome o;
      pp_memo_counters o;
      Format.printf "wall time: %.3fs@." dt;
      let yat = Yat.State_count.analyze ~config (fun ctx -> scn.pre ctx) in
      Format.printf "eager baseline would explore %a states@." Yat.State_count.pp_count
        yat.Yat.State_count.log10_total;
      if Jaaru.Explorer.found_bug o then Error (`Msg "fixed benchmark reported a bug") else Ok ()

let perf_cmd =
  let doc = "Exhaustively explore a fixed RECIPE benchmark and report statistics" in
  Cmd.v
    (Cmd.info "perf" ~doc)
    Term.(term_result (const perf_run $ bench_arg $ n_arg $ jobs_arg $ snapshot_arg $ memo_arg))

(* --- fuzz ------------------------------------------------------------------ *)

let seeds_arg =
  Arg.(value & opt int 16 & info [ "seeds" ] ~docv:"N" ~doc:"Number of schedule seeds to fuzz")

let fuzz_run id nseeds jobs =
  match find_entry id with
  | Error e -> Error e
  | Ok entry ->
      let seeds = List.init nseeds succ in
      Format.printf "fuzzing %s over %d schedules...@." entry.id nseeds;
      let config = { entry.config with Jaaru.Config.jobs = max 1 jobs } in
      let r = Jaaru.Fuzz.run ~config ~seeds entry.scenario in
      Format.printf "%a@." Jaaru.Fuzz.pp r;
      let expected_bug = entry.expected <> None in
      if expected_bug && not (Jaaru.Fuzz.found_bug r) then
        Error (`Msg "seeded bug was not found on any schedule")
      else if (not expected_bug) && Jaaru.Fuzz.found_bug r then
        Error (`Msg "clean case reported a bug")
      else Ok ()

let fuzz_cmd =
  let doc = "Fuzz a bundled case across seeded thread schedules (concurrency bugs)" in
  Cmd.v (Cmd.info "fuzz" ~doc) Term.(term_result (const fuzz_run $ id_arg $ seeds_arg $ jobs_arg))

(* --- pbt ------------------------------------------------------------------ *)

(* Stateful property-based testing: generated command sequences, each
   explored across every crash point, checked against an in-memory fake.
   Stdout is deterministic for a fixed seed — reports never mention wall
   clock, and each exploration's outcome is jobs/layer-invariant by the
   explorer's contract — so CI can diff two runs byte-for-byte. Rates go to
   stderr. *)

let structure_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "structure" ] ~docv:"ID"
        ~doc:
          "Test one structure (see `jaaru pbt --list'; seeded-bug variants like \
           $(b,pmdk-hashmap-atomic!missing-entry-flush) are accepted here and only here). \
           Default: every clean structure.")

let pbt_list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List the testable structures and exit")

let count_arg =
  Arg.(
    value & opt int 25
    & info [ "count" ] ~docv:"N" ~doc:"Command sequences to generate per structure")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Generation seed")

let max_cmds_arg =
  Arg.(
    value & opt int 6
    & info [ "max-cmds" ] ~docv:"N" ~doc:"Maximum commands per generated sequence")

let time_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "time-budget" ] ~docv:"SEC"
        ~doc:
          "Nightly mode: keep output deterministic only in content shape, not coverage — stop \
           cooperatively after $(docv) seconds of wall clock across all structures, reporting \
           each interrupted structure with the sequences it completed.")

let json_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json-out" ] ~docv:"FILE"
        ~doc:
          "Also write the coverage/witness summary as a schema-versioned JSON artifact \
           ($(b,jaaru-pbt-coverage/1)) to $(docv) — what the nightly publishes; deterministic \
           (no wall-clock fields).")

let pbt_run structure list count seed max_cmds time_budget jobs snapshot memo json_out =
  if list then begin
    Format.printf "%-42s %-8s %s@." "ID" "FAMILY" "ORACLE";
    List.iter
      (fun a ->
        let module S = (val a : Pbt.Structures.STRUCTURE) in
        Format.printf "%-42s %-8s %s@." S.id S.family
          (match S.discipline with
          | Pbt.Oracle.Any_subset -> "any persist-consistent subset"
          | Pbt.Oracle.Prefix_only -> "prefix of issued commands"))
      (Pbt.Structures.all () @ Pbt.Structures.seeded ());
    Ok ()
  end
  else
    let adapters =
      match structure with
      | None -> Ok (Pbt.Structures.all ())
      | Some id -> (
          match Pbt.Structures.find id with
          | Some a -> Ok [ a ]
          | None ->
              Error (`Msg (Printf.sprintf "unknown structure %S; try `jaaru pbt --list'" id)))
    in
    match adapters with
    | Error e -> Error e
    | Ok adapters ->
        let deadline = Option.map (fun b -> Unix.gettimeofday () +. b) time_budget in
        let config = { Pbt.Runner.config with Jaaru.Config.jobs = max 1 jobs; snapshot; memo } in
        let reports =
          List.map
            (fun a -> Pbt.Driver.run_structure ~config ?deadline ~seed ~count ~max_cmds a)
            adapters
        in
        List.iter
          (fun r ->
            Format.printf "%a@." Pbt.Driver.pp_report r;
            if r.Pbt.Driver.wall > 0. then
              Format.eprintf "%s: %.1f sequences/s, %.0f executions/s (%.2fs)@."
                r.Pbt.Driver.structure
                (float_of_int r.Pbt.Driver.sequences /. r.Pbt.Driver.wall)
                (float_of_int r.Pbt.Driver.executions /. r.Pbt.Driver.wall)
                r.Pbt.Driver.wall)
          reports;
        Option.iter
          (fun path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> output_string oc (Pbt.Driver.json_report reports)))
          json_out;
        let failed = List.filter Pbt.Driver.found_bug reports in
        let interrupted = List.exists (fun r -> r.Pbt.Driver.interrupted) reports in
        if failed <> [] then
          Error
            (`Msg
              (Printf.sprintf "%d structure(s) failed: %s" (List.length failed)
                 (String.concat ", " (List.map (fun r -> r.Pbt.Driver.structure) failed))))
        else begin
          if interrupted then
            Format.printf "time budget exhausted; coverage above is partial@.";
          Ok ()
        end

let pbt_cmd =
  let doc = "Property-based test the bundled structures against in-memory fakes across crashes" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates random command sequences per structure, runs each under the model checker \
         across every injected crash point, and requires the recovered observable state to match \
         an in-memory fake applied to some persist-consistent subset of the issued commands. \
         Failing sequences are shrunk to a minimal witness with a replayable repro line.";
    ]
  in
  Cmd.v
    (Cmd.info "pbt" ~doc ~man)
    Term.(
      term_result
        (const pbt_run $ structure_arg $ pbt_list_arg $ count_arg $ seed_arg $ max_cmds_arg
       $ time_budget_arg $ jobs_arg $ snapshot_arg $ memo_arg $ json_out_arg))

(* --- fleet ----------------------------------------------------------------- *)

(* Fleet mode fans the exploration out over supervised worker OS processes.
   Both sides — `jaaru fleet` (the coordinator) and the internal
   `jaaru fleet-worker` it spawns — build the exploration configuration
   through this one function, so the checkpoint fingerprints cannot drift:
   a worker that would compute a different tree rejects its shards instead
   of silently exploring the wrong one. Fleet always explores exhaustively
   (stop-at-first-bug stops mid-subtree, which has no deterministic merge). *)
let fleet_exploration_config entry ~max_failures ~max_steps ~jobs ~snapshot ~memo =
  apply_overrides entry.config ~max_failures ~max_steps ~exhaustive:true ~jobs ~snapshot ~memo

let fleet_workers_arg =
  Arg.(
    value & opt int 2
    & info [ "fleet-workers" ] ~docv:"N"
        ~doc:
          "Supervised worker processes. The merged report is byte-identical for every value \
           (including 1) and to a plain single-process `jaaru check'.")

let fleet_shards_arg =
  Arg.(
    value & opt int 4
    & info [ "fleet-shards" ] ~docv:"N"
        ~doc:"Target shards per worker (finer shards rebalance better; default 4)")

let fleet_split_arg =
  Arg.(
    value & opt int 32
    & info [ "fleet-split-execs" ] ~docv:"N"
        ~doc:"Executions explored in-process to grow the frontier before sharding (default 32)")

let fleet_chaos_arg =
  Arg.(
    value & opt string ""
    & info [ "fleet-chaos" ] ~docv:"SPEC"
        ~doc:
          "Self fault injection, e.g. $(b,kill:0.3,hang:0.1,torn:0.2): per-assignment \
           probabilities of SIGKILLing the worker mid-shard, stalling its channel until the \
           heartbeat timeout fires, or tearing the shard checkpoint file. The merged report is \
           unchanged — chaos only exercises the retry machinery.")

let fleet_chaos_seed_arg =
  Arg.(
    value & opt int 0
    & info [ "fleet-chaos-seed" ] ~docv:"SEED" ~doc:"Seed for the chaos fault schedule")

let heartbeat_timeout_arg =
  Arg.(
    value & opt float 2.0
    & info [ "heartbeat-timeout" ] ~docv:"SEC"
        ~doc:"Seconds without a worker heartbeat before it is declared hung and killed")

let quarantine_arg =
  Arg.(
    value & opt int 3
    & info [ "quarantine-after" ] ~docv:"N"
        ~doc:
          "Non-chaos failures after which a shard is quarantined and reported instead of retried \
           forever (a poison shard that keeps killing workers must not wedge the fleet)")

let in_process_arg =
  Arg.(
    value & flag
    & info [ "in-process" ]
        ~doc:
          "Explore every shard on this process instead of spawning workers — the degraded mode \
           the fleet falls back to when spawning fails, exposed for testing")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print supervision events (spawns, retries, chaos)")

let heartbeat_period_arg =
  Arg.(
    value & opt float 0.05
    & info [ "heartbeat-period" ] ~docv:"SEC" ~doc:"Worker heartbeat interval (internal)")

let rm_rf dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
      Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ()) entries;
      (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let make_scratch () =
  let rec go n =
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "jaaru-fleet-%d-%d" (Unix.getpid ()) n)
    in
    match Unix.mkdir dir 0o700 with
    | () -> dir
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (n + 1)
  in
  go 0

let fleet_result_checks entry (o : Jaaru.Explorer.outcome) =
  let expected_bug = entry.expected <> None in
  let found = Jaaru.Explorer.found_bug o in
  if expected_bug && not found then Error (`Msg "seeded bug was not found")
  else if (not expected_bug) && found then Error (`Msg "clean case reported a bug")
  else Ok ()

let fleet_run_entry entry ~workers ~shards_per_worker ~split_execs ~chaos ~chaos_seed
    ~heartbeat_timeout ~heartbeat_period ~quarantine_after ~in_process ~max_failures ~max_steps
    ~jobs ~snapshot ~memo ~verbose =
  let config = fleet_exploration_config entry ~max_failures ~max_steps ~jobs ~snapshot ~memo in
  let scratch = make_scratch () in
  let worker_argv =
    if in_process then None
    else
      Some
        (Array.of_list
           ([ Sys.executable_name; "fleet-worker"; entry.id ]
           @ (match max_failures with
             | Some n -> [ "--max-failures"; string_of_int n ]
             | None -> [])
           @ (match max_steps with Some n -> [ "--max-steps"; string_of_int n ] | None -> [])
           @ [
               "--jobs";
               string_of_int (max 1 jobs);
               "--snapshot";
               (if snapshot then "on" else "off");
               "--memo";
               (if memo then "on" else "off");
               "--heartbeat-period";
               Printf.sprintf "%g" heartbeat_period;
             ]))
  in
  let fleet =
    {
      (Fleet.Coordinator.default ~scratch) with
      Fleet.Coordinator.workers = max 1 workers;
      shards_per_worker = max 1 shards_per_worker;
      split_execs = max 1 split_execs;
      heartbeat_timeout;
      quarantine_after = max 1 quarantine_after;
      chaos;
      chaos_seed;
      worker_argv;
      log = (if verbose then fun s -> Format.eprintf "[fleet] %s@." s else ignore);
    }
  in
  Fun.protect
    ~finally:(fun () -> rm_rf scratch)
    (fun () ->
      with_graceful_signals (fun () ->
          Fleet.Coordinator.run ~fleet ~config ~scenario:entry.scenario))

let fleet_run id workers shards_per_worker split_execs chaos_spec chaos_seed heartbeat_timeout
    heartbeat_period quarantine_after in_process max_failures max_steps jobs snapshot memo
    checkpoint report_out verbose =
  match find_entry id with
  | Error e -> Error e
  | Ok entry -> (
      match Fleet.Supervise.parse_chaos chaos_spec with
      | exception Invalid_argument m -> Error (`Msg m)
      | chaos -> (
          Format.printf "fleet-checking %s (%s): %s@." entry.id entry.benchmark entry.description;
          match
            fleet_run_entry entry ~workers ~shards_per_worker ~split_execs ~chaos ~chaos_seed
              ~heartbeat_timeout ~heartbeat_period ~quarantine_after ~in_process ~max_failures
              ~max_steps ~jobs ~snapshot ~memo ~verbose
          with
          | exception Jaaru.Checkpoint.Rejected msg -> Error (`Msg msg)
          | r ->
              let o = r.Fleet.Coordinator.outcome in
              Format.printf "%a@.@." Jaaru.Explorer.pp_outcome o;
              Format.printf "%a@." Fleet.Coordinator.pp_fleet r.Fleet.Coordinator.fleet;
              Option.iter (fun path -> write_report path o) report_out;
              List.iter (fun b -> Format.printf "bug: %s@." (Jaaru.Bug.symptom b)) o.Jaaru.Explorer.bugs;
              if r.Fleet.Coordinator.remaining <> [] || r.Fleet.Coordinator.interrupted then begin
                (* Checkpoint every live shard so the run is continuable —
                   with plain `jaaru check --resume`: the aggregate uses the
                   same fingerprint and format as a single-process run. *)
                (match checkpoint with
                | Some path ->
                    let config =
                      fleet_exploration_config entry ~max_failures ~max_steps ~jobs ~snapshot ~memo
                    in
                    let cp =
                      Jaaru.Checkpoint.make
                        ~fingerprint:
                          (Jaaru.Checkpoint.fingerprint ~workload:entry.scenario.Jaaru.Explorer.name
                             config)
                        ~frontier:r.Fleet.Coordinator.remaining ~bugs:o.Jaaru.Explorer.bugs
                        ~multi_rf:o.Jaaru.Explorer.multi_rf ~perf:o.Jaaru.Explorer.perf
                        ~findings:o.Jaaru.Explorer.findings ~stats:o.Jaaru.Explorer.stats
                    in
                    Jaaru.Checkpoint.save cp path;
                    Format.printf "@.fleet stopped early; continue with: jaaru check %s --resume %s@."
                      entry.id path
                | None ->
                    Format.printf
                      "@.fleet stopped early; progress was discarded (re-run with --checkpoint \
                       FILE to make fleet runs resumable)@.");
                Error
                  (`Msg
                    (if r.Fleet.Coordinator.interrupted then "run interrupted"
                     else "unexplored shards remain (quarantined)"))
              end
              else fleet_result_checks entry o))

let fleet_cmd =
  let doc = "Model check one case across supervised worker processes" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Splits the choice tree into shard checkpoints, fans them out to supervised worker \
         processes (heartbeats, crash detection, retry with capped backoff, poison-shard \
         quarantine, work stealing, degradation to in-process exploration), and merges the shard \
         reports deterministically: an exhaustive fleet run reports byte-identically to \
         single-process $(b,jaaru check), for every $(b,--fleet-workers) value, with \
         $(b,--fleet-chaos) faults injected or not.";
    ]
  in
  Cmd.v
    (Cmd.info "fleet" ~doc ~man)
    Term.(
      term_result
        (const fleet_run $ id_arg $ fleet_workers_arg $ fleet_shards_arg $ fleet_split_arg
       $ fleet_chaos_arg $ fleet_chaos_seed_arg $ heartbeat_timeout_arg $ heartbeat_period_arg
       $ quarantine_arg $ in_process_arg $ max_failures_arg $ max_steps_arg $ jobs_arg
       $ snapshot_arg $ memo_arg $ checkpoint_arg $ report_out_arg $ verbose_arg))

(* The internal worker entry point `jaaru fleet` spawns. Its stdin/stdout are
   the protocol pipes — nothing here may print to stdout. *)
let fleet_worker_run id max_failures max_steps jobs snapshot memo heartbeat_period =
  match find_entry id with
  | Error e -> Error e
  | Ok entry ->
      let config = fleet_exploration_config entry ~max_failures ~max_steps ~jobs ~snapshot ~memo in
      let run ~shard:_ ~attempt:_ ~path =
        match Jaaru.Checkpoint.load path with
        | exception Jaaru.Checkpoint.Rejected msg -> Error msg
        | cp -> (
            match
              Jaaru.Checkpoint.validate cp ~workload:entry.scenario.Jaaru.Explorer.name ~config
            with
            | exception Jaaru.Checkpoint.Rejected msg -> Error msg
            | () ->
                (* A Preempt for the previous shard that raced its Result
                   must not poison this one. *)
                Jaaru.Explorer.clear_interrupt ();
                let out = path ^ ".result" in
                let _o = Jaaru.Explorer.run ~config ~resume:cp ~checkpoint:out entry.scenario in
                let rcp = Jaaru.Checkpoint.load out in
                Ok (Jaaru.Checkpoint.to_string rcp))
      in
      Fleet.Worker.serve ~heartbeat_period ~on_preempt:Jaaru.Explorer.request_interrupt ~run ();
      Ok ()

let fleet_worker_cmd =
  let doc = "Internal: the worker process `jaaru fleet' spawns (speaks frames on stdin/stdout)" in
  Cmd.v
    (Cmd.info "fleet-worker" ~doc)
    Term.(
      term_result
        (const fleet_worker_run $ id_arg $ max_failures_arg $ max_steps_arg $ jobs_arg
       $ snapshot_arg $ memo_arg $ heartbeat_period_arg))

(* --- serve ----------------------------------------------------------------- *)

(* Long-running job intake: a directory queue (incoming/ -> active/ -> done/)
   of small job files, each naming a case, checked with the fleet and the
   report written next to the job. *)

let serve_dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Queue directory ($(docv)/incoming, $(docv)/active, $(docv)/done)")

let once_arg =
  Arg.(value & flag & info [ "once" ] ~doc:"Process the current backlog and exit (testing, cron)")

let poll_arg =
  Arg.(value & opt float 1.0 & info [ "poll" ] ~docv:"SEC" ~doc:"Queue poll interval (default 1s)")

let read_job path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> match input_line ic with line -> String.trim line | exception End_of_file -> "")

let serve_run dir once poll workers shards_per_worker split_execs chaos_spec chaos_seed
    heartbeat_timeout heartbeat_period quarantine_after in_process verbose =
  match Fleet.Supervise.parse_chaos chaos_spec with
  | exception Invalid_argument m -> Error (`Msg m)
  | chaos ->
      let incoming = Filename.concat dir "incoming"
      and active = Filename.concat dir "active"
      and done_ = Filename.concat dir "done" in
      List.iter
        (fun d ->
          try Unix.mkdir d 0o755
          with Unix.Unix_error (Unix.EEXIST, _, _) -> () | Unix.Unix_error (Unix.ENOENT, _, _) ->
            failwith (dir ^ ": no such directory"))
        [ incoming; active; done_ ];
      let interrupted () = Jaaru.Explorer.interrupts_requested () > 0 in
      let run_job name =
        let src = Filename.concat incoming name in
        let work = Filename.concat active name in
        Sys.rename src work;
        let case = read_job work in
        Format.printf "serve: job %s -> case %s@." name case;
        let report =
          match find_entry case with
          | Error (`Msg m) -> Printf.sprintf "error: %s\n" m
          | Ok entry -> (
              match
                fleet_run_entry entry ~workers ~shards_per_worker ~split_execs ~chaos ~chaos_seed
                  ~heartbeat_timeout ~heartbeat_period ~quarantine_after ~in_process
                  ~max_failures:None ~max_steps:None ~jobs:1 ~snapshot:true ~memo:true ~verbose
              with
              | exception Jaaru.Checkpoint.Rejected msg -> Printf.sprintf "error: %s\n" msg
              | r ->
                  let o = r.Fleet.Coordinator.outcome in
                  let status =
                    if r.Fleet.Coordinator.interrupted then "interrupted"
                    else if r.Fleet.Coordinator.remaining <> [] then "incomplete (quarantined shards)"
                    else
                      match fleet_result_checks entry o with
                      | Ok () -> "pass"
                      | Error (`Msg m) -> "fail: " ^ m
                  in
                  Format.asprintf "%a@.%a@.status: %s@." Jaaru.Explorer.pp_report o
                    Fleet.Coordinator.pp_fleet r.Fleet.Coordinator.fleet status)
        in
        if interrupted () then begin
          (* Put the job back for the next serve rather than recording a
             partial verdict. *)
          Sys.rename work src;
          Format.printf "serve: interrupted, job %s returned to the queue@." name
        end
        else begin
          let out = Filename.concat done_ (Filename.remove_extension name ^ ".report") in
          let oc = open_out out in
          Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc report);
          Sys.remove work;
          Format.printf "serve: job %s done -> %s@." name out
        end
      in
      let backlog () =
        Sys.readdir incoming |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".job")
        |> List.sort compare
      in
      with_graceful_signals (fun () ->
          let rec loop () =
            if not (interrupted ()) then begin
              match backlog () with
              | [] ->
                  if once then ()
                  else begin
                    Unix.sleepf poll;
                    loop ()
                  end
              | jobs ->
                  List.iter (fun j -> if not (interrupted ()) then run_job j) jobs;
                  if once && not (interrupted ()) then loop () else if once then () else loop ()
            end
          in
          loop ());
      if interrupted () then Error (`Msg "serve interrupted") else Ok ()

let serve_cmd =
  let doc = "Run a long-lived fleet serving jobs from a directory queue" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Watches $(i,DIR)/incoming for $(b,*.job) files (first line: a case id, as in `jaaru \
         list'), checks each with the fleet, streams progress to stdout, and writes \
         $(i,DIR)/done/$(i,NAME).report. Jobs survive interruption: a job being processed when \
         SIGINT/SIGTERM arrives is returned to the queue.";
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man)
    Term.(
      term_result
        (const serve_run $ serve_dir_arg $ once_arg $ poll_arg $ fleet_workers_arg
       $ fleet_shards_arg $ fleet_split_arg $ fleet_chaos_arg $ fleet_chaos_seed_arg
       $ heartbeat_timeout_arg $ heartbeat_period_arg $ quarantine_arg $ in_process_arg
       $ verbose_arg))

(* --- main ------------------------------------------------------------------ *)

let () =
  let doc = "Jaaru: a model checker for persistent-memory programs" in
  let info = Cmd.info "jaaru" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            check_cmd;
            fleet_cmd;
            fleet_worker_cmd;
            serve_cmd;
            lint_cmd;
            yat_cmd;
            perf_cmd;
            fuzz_cmd;
            pbt_cmd;
          ]))
